// Package mmc implements the Mobility Markov Chain re-identification
// attack of Gambs, Killijian & del Prado Cortez — "Show Me How You Move
// and I Will Tell You Who You Are" (reference [1] of the paper).
//
// A user's mobility is summarized as a first-order Markov chain whose
// states are her POIs and whose transitions are the observed movements
// between consecutive stays. Two chains built from different observation
// periods of the same user are highly similar, so an attacker who owns a
// labelled training chain per target can re-identify anonymized test
// trajectories by nearest-chain matching.
//
// The chain distance follows the paper's stationary variant: POI states
// are matched geographically (greedy, within a radius), and the distance
// combines (a) how many of the training chain's important states are
// missing and (b) the geographic distance between matched states,
// weighted by their stationary probabilities.
package mmc

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mobipriv/internal/geo"
	"mobipriv/internal/poi"
	"mobipriv/internal/trace"
)

// Chain is a mobility Markov chain: POI states with stationary weights
// and transition probabilities.
type Chain struct {
	// States are the POI locations, ordered by decreasing weight.
	States []geo.Point
	// Weight[i] is the stationary probability of state i (time share of
	// the total stay time).
	Weight []float64
	// Trans[i][j] is the probability of moving from state i to state j,
	// estimated from consecutive-stay counts with add-one smoothing.
	Trans [][]float64
	// Visits counts the stays behind the chain.
	Visits int
}

// Config parameterizes chain construction.
type Config struct {
	// POI configures the stay extraction.
	POI poi.Config
	// MaxStates caps the chain size to the top-k POIs by time share
	// (Gambs et al. use the few most important POIs). Zero means 5.
	MaxStates int
}

// DefaultConfig returns the attack's standard settings.
func DefaultConfig() Config {
	return Config{POI: poi.DefaultConfig(), MaxStates: 5}
}

func (c Config) maxStates() int {
	if c.MaxStates > 0 {
		return c.MaxStates
	}
	return 5
}

// ErrNoStates reports a trace with no extractable POI states.
var ErrNoStates = errors.New("mmc: no POI states in trace")

// Build constructs the mobility Markov chain of one trace.
func Build(tr *trace.Trace, cfg Config) (*Chain, error) {
	stays, err := poi.Stays(tr, cfg.POI)
	if err != nil {
		return nil, fmt.Errorf("mmc: %w", err)
	}
	if len(stays) == 0 {
		return nil, ErrNoStates
	}
	mergeRadius := cfg.POI.MergeRadius
	if mergeRadius <= 0 {
		mergeRadius = cfg.POI.MaxDiameter
	}
	pois := poi.Cluster(stays, mergeRadius)
	if len(pois) == 0 {
		return nil, ErrNoStates
	}
	if len(pois) > cfg.maxStates() {
		pois = pois[:cfg.maxStates()] // Cluster orders by decreasing time
	}
	ch := &Chain{
		States: make([]geo.Point, len(pois)),
		Weight: make([]float64, len(pois)),
		Visits: len(stays),
	}
	var total float64
	for i, p := range pois {
		ch.States[i] = p.Center
		ch.Weight[i] = p.TotalTime.Seconds()
		total += ch.Weight[i]
	}
	if total > 0 {
		for i := range ch.Weight {
			ch.Weight[i] /= total
		}
	}
	// Transition counts between consecutive stays (mapped to states).
	counts := make([][]float64, len(pois))
	for i := range counts {
		counts[i] = make([]float64, len(pois))
	}
	stateOf := func(p geo.Point) int {
		best, bestD := -1, math.Inf(1)
		for i, s := range ch.States {
			if d := geo.FastDistance(p, s); d < bestD {
				best, bestD = i, d
			}
		}
		// Stays beyond any kept state (clipped by MaxStates) are ignored.
		if bestD > 2*cfg.POI.MaxDiameter {
			return -1
		}
		return best
	}
	prev := -1
	for _, s := range stays {
		cur := stateOf(s.Center)
		if cur < 0 {
			prev = -1
			continue
		}
		if prev >= 0 && prev != cur {
			counts[prev][cur]++
		}
		prev = cur
	}
	// Row-normalize with add-one smoothing so chains from short traces
	// remain comparable.
	ch.Trans = make([][]float64, len(pois))
	for i := range counts {
		row := make([]float64, len(pois))
		var sum float64
		for j := range counts[i] {
			row[j] = counts[i][j] + 1.0/float64(len(pois))
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
		ch.Trans[i] = row
	}
	return ch, nil
}

// Distance returns the dissimilarity of two chains in meters-equivalent
// units: the stationary-weighted geographic distance between greedily
// matched states, with unmatched weight charged at the penalty distance.
func Distance(a, b *Chain, matchRadius float64) float64 {
	if matchRadius <= 0 {
		matchRadius = 500
	}
	type pair struct {
		i, j int
		d    float64
	}
	var pairs []pair
	for i, sa := range a.States {
		for j, sb := range b.States {
			if d := geo.FastDistance(sa, sb); d <= matchRadius {
				pairs = append(pairs, pair{i, j, d})
			}
		}
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].d != pairs[y].d {
			return pairs[x].d < pairs[y].d
		}
		if pairs[x].i != pairs[y].i {
			return pairs[x].i < pairs[y].i
		}
		return pairs[x].j < pairs[y].j
	})
	usedA := make(map[int]bool)
	usedB := make(map[int]bool)
	var dist float64
	for _, p := range pairs {
		if usedA[p.i] || usedB[p.j] {
			continue
		}
		usedA[p.i] = true
		usedB[p.j] = true
		w := (a.Weight[p.i] + b.Weight[p.j]) / 2
		dist += w * p.d
	}
	// Unmatched stationary mass is charged the full penalty.
	for i, w := range a.Weight {
		if !usedA[i] {
			dist += w * matchRadius
		}
	}
	for j, w := range b.Weight {
		if !usedB[j] {
			dist += w * matchRadius
		}
	}
	return dist
}

// BuildAll constructs chains for every trace of a dataset, skipping
// traces with no states (returned in the skipped list).
func BuildAll(d *trace.Dataset, cfg Config) (chains map[string]*Chain, skipped []string, err error) {
	chains = make(map[string]*Chain, d.Len())
	for _, tr := range d.Traces() {
		ch, err := Build(tr, cfg)
		if err != nil {
			if errors.Is(err, ErrNoStates) {
				skipped = append(skipped, tr.User)
				continue
			}
			return nil, nil, err
		}
		chains[tr.User] = ch
	}
	return chains, skipped, nil
}

// LinkResult reports the re-identification outcome.
type LinkResult struct {
	Total     int     // published identities attacked
	Correct   int     // correctly re-identified
	Rate      float64 // Correct / Total
	Unmatched int     // published identities with no extractable chain
}

// Reidentify matches each published trace's chain against the training
// chains (the attacker's background knowledge, typically built from an
// earlier raw release) and scores against the truth mapping.
func Reidentify(
	published *trace.Dataset,
	training map[string]*Chain,
	truth func(publishedUser string) string,
	cfg Config,
	matchRadius float64,
) (LinkResult, error) {
	if truth == nil {
		return LinkResult{}, errors.New("mmc: nil truth function")
	}
	testChains, skipped, err := BuildAll(published, cfg)
	if err != nil {
		return LinkResult{}, err
	}
	targets := make([]string, 0, len(training))
	for u := range training {
		targets = append(targets, u)
	}
	sort.Strings(targets)

	var res LinkResult
	res.Total = published.Len()
	res.Unmatched = len(skipped)
	for _, pub := range published.Users() {
		tc, ok := testChains[pub]
		if !ok {
			continue
		}
		best, bestD := "", math.Inf(1)
		for _, t := range targets {
			if d := Distance(training[t], tc, matchRadius); d < bestD {
				best, bestD = t, d
			}
		}
		if best != "" && truth(pub) == best {
			res.Correct++
		}
	}
	if res.Total > 0 {
		res.Rate = float64(res.Correct) / float64(res.Total)
	}
	return res, nil
}

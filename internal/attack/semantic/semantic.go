// Package semantic implements the background-knowledge attacker the
// paper itself anticipates in §III: "Clues can still be obtained from
// background knowledge (e.g. the probability is higher to stop in a park
// than in the middle of a motorway) but there will be no certainty for
// an attacker."
//
// The adversary knows the locations of the city's venues (parks, malls,
// workplaces — places where stopping is plausible) and, facing a
// constant-speed trace, scores each venue by how much of the published
// trajectory lingers near it. On raw data this trivially finds the POIs;
// the question the paper raises is how much *uncertainty* the constant
// speed introduces — which this package measures as the rank of the true
// POIs among the candidate venues.
package semantic

import (
	"errors"
	"fmt"
	"sort"

	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
)

// Candidate is one venue with its accumulated score for a trace.
type Candidate struct {
	Venue geo.Point
	// Score is the time-integrated proximity mass: seconds spent within
	// Radius of the venue.
	Score float64
}

// Config parameterizes the attack.
type Config struct {
	// Radius is the venue catchment in meters (how close the trace must
	// pass for the venue to absorb score). Default 150.
	Radius float64
}

// DefaultConfig returns the standard setting.
func DefaultConfig() Config { return Config{Radius: 150} }

func (c Config) radius() float64 {
	if c.Radius > 0 {
		return c.Radius
	}
	return 150
}

// RankVenues scores every venue against one published trace and returns
// the candidates in decreasing score order. The score of a venue is the
// total published time spent within Radius of it — on a constant-speed
// trace this is proportional to the path length near the venue, which is
// exactly the residual signal the paper concedes.
func RankVenues(tr *trace.Trace, venues []geo.Point, cfg Config) ([]Candidate, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, errors.New("semantic: empty trace")
	}
	if len(venues) == 0 {
		return nil, errors.New("semantic: no venues")
	}
	radius := cfg.radius()
	out := make([]Candidate, len(venues))
	for i, v := range venues {
		out[i] = Candidate{Venue: v}
	}
	for i := 1; i < tr.Len(); i++ {
		dt := tr.Points[i].Time.Sub(tr.Points[i-1].Time).Seconds()
		mid := geo.Midpoint(tr.Points[i-1].Point, tr.Points[i].Point)
		for vi := range out {
			if geo.FastDistance(mid, out[vi].Venue) <= radius {
				out[vi].Score += dt
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out, nil
}

// RecallAtK reports, across a whole dataset, the fraction of true POIs
// that appear among each owning trace's top-k ranked venues. truePOIs
// maps each published identity to the POI locations the attacker hopes
// to recover for it (already translated through any identity ground
// truth by the caller).
func RecallAtK(
	published *trace.Dataset,
	venues []geo.Point,
	truePOIs map[string][]geo.Point,
	k int,
	cfg Config,
) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("semantic: k %d must be positive", k)
	}
	var total, hit int
	for _, tr := range published.Traces() {
		targets := truePOIs[tr.User]
		if len(targets) == 0 {
			continue
		}
		ranked, err := RankVenues(tr, venues, cfg)
		if err != nil {
			return 0, err
		}
		top := ranked
		if len(top) > k {
			top = top[:k]
		}
		for _, want := range targets {
			total++
			for _, c := range top {
				if c.Score > 0 && geo.FastDistance(c.Venue, want) <= cfg.radius() {
					hit++
					break
				}
			}
		}
	}
	if total == 0 {
		return 0, errors.New("semantic: no true POIs to score")
	}
	return float64(hit) / float64(total), nil
}

// RandomBaseline returns the expected recall@k of a guesser who picks k
// venues uniformly at random — the paper's "no certainty" floor.
func RandomBaseline(numVenues, k int) float64 {
	if numVenues <= 0 || k <= 0 {
		return 0
	}
	if k >= numVenues {
		return 1
	}
	return float64(k) / float64(numVenues)
}

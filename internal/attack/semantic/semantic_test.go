package semantic

import (
	"testing"
	"time"

	"mobipriv/internal/core"
	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
)

var (
	t0     = time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	origin = geo.Point{Lat: 45.7640, Lng: 4.8357}
)

// stopTravelStop builds a trace stopping 20 min at A, driving to B, and
// stopping 20 min there.
func stopTravelStop(a, b geo.Point) *trace.Trace {
	var pts []trace.Point
	now := t0
	stay := func(p geo.Point, n int) {
		for i := 0; i < n; i++ {
			pts = append(pts, trace.Point{Point: geo.Offset(p, float64(i%2), 0), Time: now})
			now = now.Add(30 * time.Second)
		}
	}
	stay(a, 40)
	d := geo.Distance(a, b)
	for cur := 150.0; cur < d; cur += 150 {
		pts = append(pts, trace.Point{Point: geo.Interpolate(a, b, cur/d), Time: now})
		now = now.Add(15 * time.Second)
	}
	stay(b, 40)
	return trace.MustNew("u", pts)
}

func TestRankVenuesRawData(t *testing.T) {
	a := origin
	b := geo.Destination(origin, 90, 3000)
	decoy := geo.Destination(origin, 0, 2000) // venue the user never visits
	tr := stopTravelStop(a, b)
	ranked, err := RankVenues(tr, []geo.Point{decoy, b, a}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The two stop venues must outrank the decoy, with real dwell time.
	if geo.FastDistance(ranked[0].Venue, decoy) < 1 || geo.FastDistance(ranked[1].Venue, decoy) < 1 {
		t.Fatalf("decoy ranked in top 2: %+v", ranked)
	}
	if ranked[0].Score < 10*60 {
		t.Errorf("top venue score = %v s, want >= 10 min of dwell", ranked[0].Score)
	}
	if ranked[2].Score != 0 {
		t.Errorf("decoy score = %v, want 0", ranked[2].Score)
	}
}

func TestRankVenuesSmoothedDataLosesCertainty(t *testing.T) {
	a := origin
	b := geo.Destination(origin, 90, 3000)
	// Venue on the route halfway between the stops.
	onRoute := geo.Destination(origin, 90, 1500)
	tr := stopTravelStop(a, b)
	sm, err := core.Smooth(tr, core.Config{Epsilon: 100, Trim: 0})
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := RankVenues(sm, []geo.Point{a, b, onRoute}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// After smoothing the trace spends comparable time near every venue
	// on its path: the on-route decoy's score is within a factor ~3 of
	// the true stops' (before smoothing it is >20x smaller).
	scores := make(map[string]float64)
	for _, c := range ranked {
		switch {
		case geo.FastDistance(c.Venue, a) < 1:
			scores["a"] = c.Score
		case geo.FastDistance(c.Venue, b) < 1:
			scores["b"] = c.Score
		default:
			scores["route"] = c.Score
		}
	}
	if scores["route"] == 0 {
		t.Fatal("on-route venue got no mass on a constant-speed trace")
	}
	if ratio := scores["a"] / scores["route"]; ratio > 3 {
		t.Errorf("true stop still %vx more massive than route venue after smoothing", ratio)
	}
	// Raw comparison: the stop dominates the route venue by an order of
	// magnitude.
	rawRanked, err := RankVenues(tr, []geo.Point{a, onRoute}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rawRanked[0].Score < 10*rawRanked[1].Score {
		t.Errorf("raw stop/route mass ratio = %v, want >= 10", rawRanked[0].Score/rawRanked[1].Score)
	}
}

func TestRankVenuesValidation(t *testing.T) {
	tr := stopTravelStop(origin, geo.Destination(origin, 90, 1000))
	if _, err := RankVenues(nil, []geo.Point{origin}, DefaultConfig()); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := RankVenues(tr, nil, DefaultConfig()); err == nil {
		t.Error("no venues accepted")
	}
}

func TestRecallAtK(t *testing.T) {
	a := origin
	b := geo.Destination(origin, 90, 3000)
	tr := stopTravelStop(a, b)
	d := trace.MustNewDataset([]*trace.Trace{tr})
	venues := []geo.Point{a, b, geo.Destination(origin, 0, 2000), geo.Destination(origin, 180, 2500)}
	truth := map[string][]geo.Point{"u": {a, b}}
	r, err := RecallAtK(d, venues, truth, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("raw recall@2 = %v, want 1", r)
	}
	// k=1 can only recover one of the two POIs.
	r, err = RecallAtK(d, venues, truth, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r != 0.5 {
		t.Fatalf("raw recall@1 = %v, want 0.5", r)
	}
	if _, err := RecallAtK(d, venues, truth, 0, DefaultConfig()); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RecallAtK(d, venues, map[string][]geo.Point{}, 1, DefaultConfig()); err == nil {
		t.Error("empty truth accepted")
	}
}

func TestRandomBaseline(t *testing.T) {
	if got := RandomBaseline(10, 2); got != 0.2 {
		t.Errorf("baseline = %v, want 0.2", got)
	}
	if got := RandomBaseline(3, 5); got != 1 {
		t.Errorf("baseline k>n = %v, want 1", got)
	}
	if got := RandomBaseline(0, 5); got != 0 {
		t.Errorf("baseline no venues = %v, want 0", got)
	}
}

package mobipriv_test

import (
	"sync"
	"testing"
	"time"

	"mobipriv"
	"mobipriv/internal/attack/poiattack"
	"mobipriv/internal/metrics"
	"mobipriv/internal/synth"
)

// TestHeadlineTaxiReproduction is the repository's single-number smoke
// check of the paper's thesis on the fleet workload: POI retrieval is
// eliminated while spatial coverage survives.
func TestHeadlineTaxiReproduction(t *testing.T) {
	cfg := synth.DefaultTaxiConfig()
	cfg.Vehicles = 12
	cfg.TripsEach = 5
	g, err := synth.TaxiFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := mobipriv.New(mobipriv.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Anonymize(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := poiattack.Evaluate(g.Dataset, g.Stays, poiattack.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	anon, err := poiattack.Evaluate(res.Dataset, g.Stays, poiattack.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if raw.Global.F1 < 0.9 {
		t.Fatalf("attack broken on raw data: F1 = %v", raw.Global.F1)
	}
	if anon.Global.F1 > 0.1 {
		t.Errorf("POIs not hidden on fleet data: F1 = %v", anon.Global.F1)
	}
	cov, err := metrics.Coverage(g.Dataset, res.Dataset, 500)
	if err != nil {
		t.Fatal(err)
	}
	if cov.F1 < 0.9 {
		t.Errorf("coverage destroyed: F1 = %v", cov.F1)
	}
}

// TestAnonymizerConcurrentUse verifies the documented claim that one
// Anonymizer may serve multiple goroutines.
func TestAnonymizerConcurrentUse(t *testing.T) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 6
	cfg.Sampling = 3 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := mobipriv.New(mobipriv.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]*mobipriv.Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = a.Anonymize(g.Dataset)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
	}
	// Determinism under concurrency: all results identical.
	for i := 1; i < workers; i++ {
		if results[i].Dataset.TotalPoints() != results[0].Dataset.TotalPoints() ||
			results[i].Zones() != results[0].Zones() ||
			results[i].Swaps() != results[0].Swaps() {
			t.Fatalf("worker %d diverged from worker 0", i)
		}
	}
}

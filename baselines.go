package mobipriv

import (
	"context"
	"errors"
	"fmt"

	"mobipriv/internal/baseline/geoind"
	"mobipriv/internal/baseline/w4m"
	"mobipriv/internal/core"
)

// The standard lineup compared throughout the evaluation, registered
// here so every CLI, example, experiment, and benchmark resolves the
// same mechanisms by spec. Positional parameters are consumed in the
// order listed:
//
//	raw                                  — identity publication (strawman)
//	promesse(epsilon, trim, window)      — speed smoothing only
//	pipeline(epsilon, zone-radius, ...)  — the paper's full pipeline
//	geoi(epsilon, seed)                  — planar Laplace (Andrés et al.)
//	w4m(k, delta, grid, max-radius)      — (k,δ)-anonymity (Abul et al.)
func init() {
	Register("raw", func(p *Params) (Mechanism, error) {
		return Raw(), nil
	})
	Register("promesse", func(p *Params) (Mechanism, error) {
		eps := p.Float("epsilon", 100)
		trim := p.Float("trim", -1)
		window := p.Float("window", 0) // streaming smoothing horizon; 0 = 10*epsilon
		if eps <= 0 {
			return nil, errors.New("epsilon must be positive")
		}
		return promesse(eps, trim, window), nil
	})
	Register("pipeline", func(p *Params) (Mechanism, error) {
		o := DefaultOptions()
		o.Epsilon = p.Float("epsilon", o.Epsilon)
		o.ZoneRadius = p.Float("zone-radius", o.ZoneRadius)
		o.ZoneWindow = p.Duration("zone-window", o.ZoneWindow)
		o.ZoneCooldown = p.Duration("zone-cooldown", o.ZoneCooldown)
		o.Trim = p.Float("trim", o.Trim)
		o.Seed = p.Int64("seed", o.Seed)
		o.DisableSwapping = p.Bool("no-swap", false)
		o.DisableSuppression = p.Bool("no-suppress", false)
		o.DisableSmoothing = p.Bool("no-smooth", false)
		o.DisableZones = p.Bool("no-zones", false)
		o.PseudonymPrefix = p.String("prefix", o.PseudonymPrefix)
		if err := o.validate(); err != nil {
			return nil, err
		}
		return Pipeline(o.stages()...), nil
	})
	Register("geoi", func(p *Params) (Mechanism, error) {
		eps := p.Float("epsilon", 0.01)
		seed := p.Int64("seed", 1)
		if eps <= 0 {
			return nil, errors.New("epsilon must be positive")
		}
		return GeoI(eps, seed), nil
	})
	Register("w4m", func(p *Params) (Mechanism, error) {
		cfg := w4m.DefaultConfig()
		cfg.K = p.Int("k", cfg.K)
		cfg.Delta = p.Float("delta", cfg.Delta)
		cfg.Grid = p.Duration("grid", cfg.Grid)
		cfg.MaxRadius = p.Float("max-radius", cfg.MaxRadius)
		return w4mMechanism{cfg: cfg}, nil
	})
}

// Raw returns the identity mechanism: the dataset is published as-is
// (the strawman every evaluation compares against). The input dataset
// is returned without copying. It is streaming-capable (AsStreaming):
// the online adapter republishes every update immediately. It is also
// per-trace-capable (AsPerTrace) for store-native runs.
func Raw() Mechanism {
	m := NewMechanism("raw", func(ctx context.Context, d *Dataset) (*Result, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res := &Result{Dataset: d}
		res.AddReport(StageReport{Stage: "raw"})
		return res, nil
	})
	return WithPerTrace(WithStreaming(m, streamRaw()), perTraceRaw())
}

// Promesse returns the smoothing-only mechanism (the paper's PROMESSE
// with default end-trimming): constant-speed re-publication at the
// given inter-point spacing in meters. Traces too short to anonymize
// are dropped and reported. It is streaming-capable (AsStreaming): the
// online adapter smooths over a sliding distance window instead of the
// whole trace (see internal/stream).
func Promesse(epsilon float64) Mechanism { return promesse(epsilon, -1, 0) }

func promesse(epsilon, trim, window float64) Mechanism {
	name := fmt.Sprintf("promesse(epsilon=%g)", epsilon)
	m := NewMechanism(name, func(ctx context.Context, d *Dataset) (*Result, error) {
		out, rep, err := core.SmoothDatasetCtx(ctx, d, core.Config{Epsilon: epsilon, Trim: trim})
		if err != nil {
			return nil, err
		}
		res := &Result{Dataset: out}
		res.AddReport(StageReport{Stage: "smooth", Dropped: rep.Dropped})
		return res, nil
	})
	return WithPerTrace(WithStreaming(m, streamPromesse(epsilon, window)), perTracePromesse(epsilon, trim))
}

// GeoI returns the geo-indistinguishability baseline (planar Laplace
// noise, Andrés et al. CCS'13) at the given privacy parameter in
// 1/meters. Each trace is perturbed with an independent RNG derived
// from (seed, user), so output is deterministic for a seed regardless
// of the Runner's worker count. It is streaming-capable (AsStreaming)
// with byte-identical output: the online adapter derives the same
// per-user noise streams.
func GeoI(epsilon float64, seed int64) Mechanism {
	name := fmt.Sprintf("geoi(epsilon=%g)", epsilon)
	m := NewMechanism(name, func(ctx context.Context, d *Dataset) (*Result, error) {
		out, err := geoind.PerturbDatasetCtx(ctx, d, geoind.Config{Epsilon: epsilon, Seed: seed})
		if err != nil {
			return nil, err
		}
		res := &Result{Dataset: out}
		res.AddReport(StageReport{Stage: "geoi"})
		return res, nil
	})
	return WithPerTrace(WithStreaming(m, streamGeoI(epsilon, seed)), perTraceGeoI(epsilon, seed))
}

// W4M returns the Wait4Me (k,δ)-anonymity baseline (Abul, Bonchi &
// Nanni 2010) with anonymity set size k and tube diameter delta in
// meters.
func W4M(k int, delta float64) Mechanism {
	cfg := w4m.DefaultConfig()
	cfg.K, cfg.Delta = k, delta
	return w4mMechanism{cfg: cfg}
}

type w4mMechanism struct {
	cfg w4m.Config
}

func (m w4mMechanism) Name() string {
	return fmt.Sprintf("w4m(k=%d,delta=%g)", m.cfg.K, m.cfg.Delta)
}

func (m w4mMechanism) Apply(ctx context.Context, d *Dataset) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w4mRes, err := w4m.Anonymize(d, m.cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Dataset: w4mRes.Dataset}
	res.AddReport(StageReport{Stage: "w4m", Dropped: w4mRes.Suppressed})
	return res, nil
}

// The built-in per-trace functions mirror exactly what the batch Apply
// does to each individual trace, which is what makes store-native runs
// (Runner.RunStore) Load-identical to the in-memory path. w4m stays
// batch-only — (k,δ)-aggregation needs every trace at once — and so
// does any pipeline containing the mix-zone stage; a zone-free,
// prefix-free pipeline composes its stages' per-trace forms instead
// (see pipelineMechanism.PerTrace).

func perTraceRaw() PerTraceFunc {
	return func(ctx context.Context, tr *Trace) (*Trace, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return tr, nil
	}
}

func perTracePromesse(epsilon, trim float64) PerTraceFunc {
	cfg := core.Config{Epsilon: epsilon, Trim: trim}
	return func(ctx context.Context, tr *Trace) (*Trace, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out, err := core.Smooth(tr, cfg)
		if err != nil {
			// The same drops SmoothDatasetCtx reports as Dropped.
			if errors.Is(err, core.ErrTraceTooShort) || errors.Is(err, core.ErrZeroDuration) {
				return nil, nil
			}
			return nil, err
		}
		return out, nil
	}
}

func perTraceGeoI(epsilon float64, seed int64) PerTraceFunc {
	cfg := geoind.Config{Epsilon: epsilon, Seed: seed}
	return func(ctx context.Context, tr *Trace) (*Trace, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Same per-(seed, user) RNG derivation as PerturbDatasetCtx, so
		// the noise stream is identical to the batch run.
		m, err := geoind.NewForUser(cfg, tr.User)
		if err != nil {
			return nil, err
		}
		return m.Perturb(tr)
	}
}

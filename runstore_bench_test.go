package mobipriv_test

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mobipriv"
	"mobipriv/internal/store"
	"mobipriv/internal/trace"
)

// benchStore builds an input store for the store-native benchmarks.
func benchStore(b *testing.B, users, pointsEach int) *store.Store {
	b.Helper()
	base := time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC)
	dir := filepath.Join(b.TempDir(), "bench.mstore")
	w, err := store.Create(dir, store.Options{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < users; u++ {
		pts := make([]trace.Point, pointsEach)
		for i := range pts {
			pts[i] = trace.P(
				float64(48_000_0000+100_000*u+10_000*i)/1e7,
				float64(2_000_0000+3_000*i)/1e7,
				base.Add(time.Duration(u*13+i*30)*time.Second),
			)
		}
		if err := w.Add(trace.MustNew(fmt.Sprintf("user%05d", u), pts)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	s, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

// BenchmarkRunStore measures the store-native batch path end to end
// (store scan -> per-trace mechanism -> store write) in points/s, per
// mechanism. The CI bench-smoke run keeps this path from rotting.
func BenchmarkRunStore(b *testing.B) {
	const users, pointsEach = 64, 60
	for _, spec := range []string{"raw", "promesse(epsilon=200)", "geoi(epsilon=0.01,seed=1)"} {
		b.Run(spec, func(b *testing.B) {
			s := benchStore(b, users, pointsEach)
			m := mobipriv.MustFromSpec(spec)
			runner := mobipriv.NewRunner(mobipriv.WithWorkers(runtime.NumCPU()))
			b.ReportAllocs()
			b.ResetTimer()
			var points int64
			for i := 0; i < b.N; i++ {
				out := filepath.Join(b.TempDir(), "out.mstore")
				w, err := store.Create(out, store.Options{Overwrite: true})
				if err != nil {
					b.Fatal(err)
				}
				stats, err := runner.RunStore(context.Background(), s, w, m)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
				points += stats.Points
			}
			b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkRunStoreMemory is the flat-memory proof for the acceptance
// criterion: the 10× dataset is an order of magnitude larger than the
// pipeline's buffer budget (3×workers in-flight traces), yet the
// sampled peak heap stays flat instead of scaling with the store. The
// peak-heap-KB and peak-inflight metrics make the comparison visible in
// the bench output; the scale=1 and scale=10 lines should agree on both
// up to GC noise, while the work done scales 10×. (The traces are large
// enough that the run allocates well past the collector's 4 MB floor —
// below it HeapAlloc only accumulates and the bound would be invisible.)
func BenchmarkRunStoreMemory(b *testing.B) {
	const workers, pointsEach = 4, 4000
	base := 3 * workers // the buffer budget, in traces
	for _, scale := range []int{1, 10} {
		b.Run(fmt.Sprintf("scale=%d", scale), func(b *testing.B) {
			s := benchStore(b, base*scale, pointsEach) // scale=10 -> 10× the budget
			m := mobipriv.MustFromSpec("geoi(epsilon=0.01,seed=1)")
			runner := mobipriv.NewRunner(mobipriv.WithWorkers(workers))
			b.ReportAllocs()
			b.ResetTimer()
			var peakHeap uint64
			var peakInFlight int64
			for i := 0; i < b.N; i++ {
				stop := make(chan struct{})
				done := make(chan struct{})
				var localPeak atomic.Uint64
				go func() {
					defer close(done)
					var ms runtime.MemStats
					for {
						select {
						case <-stop:
							return
						default:
						}
						runtime.ReadMemStats(&ms)
						if ms.HeapAlloc > localPeak.Load() {
							localPeak.Store(ms.HeapAlloc)
						}
						time.Sleep(time.Millisecond)
					}
				}()
				out := filepath.Join(b.TempDir(), "out.mstore")
				w, err := store.Create(out, store.Options{Overwrite: true})
				if err != nil {
					b.Fatal(err)
				}
				stats, err := runner.RunStore(context.Background(), s, w, m)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
				close(stop)
				<-done
				if localPeak.Load() > peakHeap {
					peakHeap = localPeak.Load()
				}
				if stats.PeakInFlight > peakInFlight {
					peakInFlight = stats.PeakInFlight
				}
			}
			b.ReportMetric(float64(peakHeap)/1024, "peak-heap-KB")
			b.ReportMetric(float64(peakInFlight), "peak-inflight")
		})
	}
}

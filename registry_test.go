package mobipriv

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"mobipriv/internal/baseline/geoind"
	"mobipriv/internal/baseline/w4m"
	"mobipriv/internal/core"
	"mobipriv/internal/trace"
)

func TestFromSpecValid(t *testing.T) {
	cases := []struct {
		spec string
		name string // expected normalized Name
	}{
		{"raw", "raw"},
		{"promesse", "promesse"},
		{"promesse(epsilon=200)", "promesse(epsilon=200)"},
		{"promesse( epsilon = 200 )", "promesse(epsilon=200)"},
		{"promesse(200)", "promesse(200)"},
		{"pipeline", "pipeline"},
		{"pipeline(epsilon=150,zone-radius=50,seed=7)", "pipeline(epsilon=150,zone-radius=50,seed=7)"},
		{"pipeline(no-swap=true)", "pipeline(no-swap=true)"},
		{"geoi", "geoi"},
		{"geoi(0.01)", "geoi(0.01)"},
		{"geoi(epsilon=0.05,seed=3)", "geoi(epsilon=0.05,seed=3)"},
		{"w4m", "w4m"},
		{"w4m(k=4,delta=200)", "w4m(k=4,delta=200)"},
		{"w4m(4,200)", "w4m(4,200)"},
		{"  raw  ", "raw"},
		{"promesse()", "promesse"},
	}
	for _, c := range cases {
		m, err := FromSpec(c.spec)
		if err != nil {
			t.Errorf("FromSpec(%q): %v", c.spec, err)
			continue
		}
		if m.Name() != c.name {
			t.Errorf("FromSpec(%q).Name() = %q, want %q", c.spec, m.Name(), c.name)
		}
		// Name round-trips through FromSpec.
		if _, err := FromSpec(m.Name()); err != nil {
			t.Errorf("round-trip FromSpec(%q): %v", m.Name(), err)
		}
	}
}

func TestFromSpecInvalid(t *testing.T) {
	cases := []string{
		"",                          // empty
		"   ",                       // blank
		"nope",                      // unknown mechanism
		"quantum(entangle=9)",       // unknown mechanism with params
		"promesse(epsilon=abc)",     // bad float
		"promesse(spacing=100)",     // unknown parameter
		"w4m(k=four)",               // bad int
		"w4m(k=4,k=5)",              // duplicate key
		"geoi(0.01,0.02)",           // too many positionals
		"pipeline(epsilon=0)",       // fails Options validation
		"pipeline(zone-window=wat)", // bad duration
		"promesse(epsilon=100",      // missing closing paren
		"pro messe",                 // invalid name
		"promesse(=5)",              // key-less parameter
		"geoi(epsilon=0.01,0.02)",   // positional after named
	}
	for _, spec := range cases {
		if _, err := FromSpec(spec); err == nil {
			t.Errorf("FromSpec(%q) accepted", spec)
		}
	}
}

func TestFromSpecUnknownMechanismError(t *testing.T) {
	_, err := FromSpec("nope")
	if !errors.Is(err, ErrUnknownMechanism) {
		t.Fatalf("error = %v, want ErrUnknownMechanism", err)
	}
	// The error should list what IS available.
	for _, name := range []string{"raw", "promesse", "pipeline", "geoi", "w4m"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention %q", err, name)
		}
	}
}

func TestFromSpecUnknownMechanismSuggestion(t *testing.T) {
	// A near-miss gets a "did you mean" pointing at the real name.
	for spec, want := range map[string]string{
		"promese":           `did you mean "promesse"`,
		"Geoi(0.01)":        `did you mean "geoi"`,
		"pipelines(seed=3)": `did you mean "pipeline"`,
	} {
		_, err := FromSpec(spec)
		if !errors.Is(err, ErrUnknownMechanism) {
			t.Fatalf("FromSpec(%q) = %v, want ErrUnknownMechanism", spec, err)
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("FromSpec(%q) error %q missing %q", spec, err, want)
		}
	}
	// A wild miss gets the plain listing, no bogus suggestion.
	_, err := FromSpec("zzzzzzzz")
	if strings.Contains(err.Error(), "did you mean") {
		t.Errorf("error %q suggests a name for a wild miss", err)
	}
}

func TestFromSpecParameterDefaults(t *testing.T) {
	// promesse defaults to the paper's operating point: epsilon 100.
	d := commuterData(t, 6).Dataset
	def, err := MustFromSpec("promesse").Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := MustFromSpec("promesse(epsilon=100)").Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(def.Dataset, explicit.Dataset) {
		t.Error("promesse default epsilon is not 100")
	}
	// Seeds default to 1: geoi and geoi(seed=1) agree, geoi(seed=2) differs.
	g1, err := MustFromSpec("geoi(0.01)").Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	g1b, err := MustFromSpec("geoi(epsilon=0.01,seed=1)").Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := MustFromSpec("geoi(epsilon=0.01,seed=2)").Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(g1.Dataset, g1b.Dataset) {
		t.Error("geoi default seed is not 1")
	}
	if datasetsEqual(g1.Dataset, g2.Dataset) {
		t.Error("geoi seed parameter has no effect")
	}
}

func TestMechanismsListsStandardLineup(t *testing.T) {
	names := Mechanisms()
	for _, want := range []string{"geoi", "pipeline", "promesse", "raw", "w4m"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Mechanisms() = %v, missing %q", names, want)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, f Factory) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) did not panic", name)
			}
		}()
		Register(name, f)
	}
	dummy := func(p *Params) (Mechanism, error) { return Raw(), nil }
	mustPanic("", dummy)
	mustPanic("has space", dummy)
	mustPanic("paren(", dummy)
	mustPanic("raw", dummy) // duplicate
	mustPanic("nilfactory", nil)
}

var registerTestIdentity sync.Once

func TestRegisterCustomMechanism(t *testing.T) {
	// Registration is global and permanent; guard it so the test
	// survives go test -count=N.
	registerTestIdentity.Do(func() {
		Register("test-identity", func(p *Params) (Mechanism, error) {
			return NewMechanism("test-identity", func(ctx context.Context, d *Dataset) (*Result, error) {
				return &Result{Dataset: d}, nil
			}), nil
		})
	})
	d := commuterData(t, 3).Dataset
	m, err := FromSpec("test-identity")
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != d {
		t.Error("custom identity mechanism did not pass the dataset through")
	}
}

func TestSplitSpecs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"raw", []string{"raw"}},
		{"raw,promesse", []string{"raw", "promesse"}},
		{"raw, w4m(k=4,delta=200), geoi(0.01)", []string{"raw", "w4m(k=4,delta=200)", "geoi(0.01)"}},
		{" , raw ,, ", []string{"raw"}},
		{"", nil},
	}
	for _, c := range cases {
		got := SplitSpecs(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitSpecs(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitSpecs(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

// TestLineupMatchesHandWired asserts that FromSpec of each standard
// lineup entry behaves exactly like a direct call into the underlying
// packages — i.e. the registry adds spec parsing and defaults without
// changing behavior. (For geoi, "direct" means PerturbDataset, whose
// per-trace RNG derivation this PR introduced for worker-count
// independence; the seed repo's shared-RNG serial stream is
// intentionally not preserved.)
func TestLineupMatchesHandWired(t *testing.T) {
	g := commuterData(t, 10)
	d := g.Dataset
	ctx := context.Background()

	handWired := map[string]func() (*trace.Dataset, error){
		"raw": func() (*trace.Dataset, error) { return d, nil },
		"promesse": func() (*trace.Dataset, error) {
			out, _, err := core.SmoothDataset(d, core.DefaultConfig())
			return out, err
		},
		"pipeline": func() (*trace.Dataset, error) {
			a, err := New(DefaultOptions())
			if err != nil {
				return nil, err
			}
			res, err := a.Anonymize(d)
			if err != nil {
				return nil, err
			}
			return res.Dataset, nil
		},
		"geoi(0.01)": func() (*trace.Dataset, error) {
			return geoind.PerturbDataset(d, geoind.Config{Epsilon: 0.01, Seed: 1})
		},
		"w4m(k=4,delta=200)": func() (*trace.Dataset, error) {
			res, err := w4m.Anonymize(d, w4m.DefaultConfig())
			if err != nil {
				return nil, err
			}
			return res.Dataset, nil
		},
	}
	for spec, wire := range handWired {
		t.Run(spec, func(t *testing.T) {
			want, err := wire()
			if err != nil {
				t.Fatal(err)
			}
			m, err := FromSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Apply(ctx, d)
			if err != nil {
				t.Fatal(err)
			}
			if !datasetsEqual(want, res.Dataset) {
				t.Errorf("FromSpec(%q) output differs from the hand-wired equivalent", spec)
			}
		})
	}
}

// datasetsEqual compares two datasets point by point.
func datasetsEqual(a, b *trace.Dataset) bool {
	if a.Len() != b.Len() {
		return false
	}
	ta, tb := a.Traces(), b.Traces()
	for i := range ta {
		if ta[i].User != tb[i].User || ta[i].Len() != tb[i].Len() {
			return false
		}
		for j := range ta[i].Points {
			pa, pb := ta[i].Points[j], tb[i].Points[j]
			if pa.Lat != pb.Lat || pa.Lng != pb.Lng || !pa.Time.Equal(pb.Time) {
				return false
			}
		}
	}
	return true
}

func TestParamsDuration(t *testing.T) {
	m, err := FromSpec("pipeline(zone-window=90s,zone-cooldown=600)")
	if err != nil {
		t.Fatal(err)
	}
	// A bare number is seconds: cooldown 600 = 10 minutes. Exercise it
	// end to end rather than poking internals.
	if _, err := m.Apply(context.Background(), commuterData(t, 4).Dataset); err != nil {
		t.Fatal(err)
	}
	if _, err := FromSpec("pipeline(zone-window=0s)"); err == nil {
		t.Error("zero zone-window accepted")
	}
}

package mobipriv

import (
	"context"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/stream"
)

// replayUpdates flattens a dataset into one globally time-interleaved
// update stream — what a live ingestion path would see.
func replayUpdates(d *Dataset) []stream.Update {
	var out []stream.Update
	for _, tr := range d.Traces() {
		for _, p := range tr.Points {
			out = append(out, stream.Update{User: tr.User, Point: p})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// replayThroughEngine replays the dataset through a sharded engine
// running the spec's streaming adapter and returns the flushed output
// grouped per (output) user.
func replayThroughEngine(t *testing.T, spec string, shards int, d *Dataset) map[string][]Point {
	t.Helper()
	m := MustFromSpec(spec)
	factory, ok := AsStreaming(m)
	if !ok {
		t.Fatalf("spec %q is not streaming-capable", spec)
	}
	var mu sync.Mutex
	got := make(map[string][]Point)
	eng, err := stream.NewEngine(stream.Config{
		Shards: shards,
		Sink: func(batch []stream.Update) {
			mu.Lock()
			for _, u := range batch {
				got[u.User] = append(got[u.User], u.Point)
			}
			mu.Unlock()
		},
	}, func(user string) stream.Mechanism { return factory(user) })
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()
	ctx := context.Background()
	updates := replayUpdates(d)
	for i := 0; i < len(updates); i += 64 {
		if err := eng.Push(ctx, updates[i:min(i+64, len(updates))]...); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return got
}

// TestStreamingGeoIReplayEquivalence is the replay-equivalence
// acceptance test for the memoryless mechanism: streaming through the
// sharded engine is byte-identical to the batch baseline for the same
// seed, because both derive the same per-user noise streams.
func TestStreamingGeoIReplayEquivalence(t *testing.T) {
	d := commuterData(t, 12).Dataset
	const spec = "geoi(epsilon=0.01,seed=7)"
	batch, err := NewRunner(WithWorkers(4)).Run(context.Background(), MustFromSpec(spec), d)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 5} {
		got := replayThroughEngine(t, spec, shards, d)
		if len(got) != batch.Dataset.Len() {
			t.Fatalf("shards=%d: %d streamed users, batch %d", shards, len(got), batch.Dataset.Len())
		}
		for _, tr := range batch.Dataset.Traces() {
			pts := got[tr.User]
			if len(pts) != tr.Len() {
				t.Fatalf("shards=%d user %s: %d streamed points, batch %d", shards, tr.User, len(pts), tr.Len())
			}
			for i, w := range tr.Points {
				g := pts[i]
				if g.Lat != w.Lat || g.Lng != w.Lng || !g.Time.Equal(w.Time) {
					t.Fatalf("shards=%d user %s point %d: streamed %v, batch %v (must be byte-identical)",
						shards, tr.User, i, g, w)
				}
			}
		}
	}
}

// TestStreamingPromesseReplayGuarantees verifies the windowed smoother
// preserves the batch mechanism's spatial guarantees when replaying a
// recorded dataset: endpoints survive, inter-point spacing is uniform
// at epsilon (never above it, up to interpolation error), every point
// lies near the original path, and published times strictly increase.
func TestStreamingPromesseReplayGuarantees(t *testing.T) {
	d := commuterData(t, 8).Dataset
	const eps = 100.0
	got := replayThroughEngine(t, "promesse(epsilon=100,window=500)", 4, d)
	if len(got) != d.Len() {
		t.Fatalf("%d streamed users, want %d", len(got), d.Len())
	}
	for _, tr := range d.Traces() {
		pts := got[tr.User]
		if len(pts) < 2 {
			t.Fatalf("user %s: only %d points streamed", tr.User, len(pts))
		}
		// Endpoints preserved.
		if !pts[0].Point.Equal(tr.Start().Point) || !pts[0].Time.Equal(tr.Start().Time) {
			t.Errorf("user %s: start not preserved", tr.User)
		}
		last := pts[len(pts)-1]
		if geo.Distance(last.Point, tr.End().Point) > 1e-6 || !last.Time.Equal(tr.End().Time) {
			t.Errorf("user %s: end not preserved", tr.User)
		}
		// Uniform spacing: consecutive points are epsilon apart along
		// the path, so their direct distance never exceeds epsilon
		// (strictly less only where the path bends).
		shortGaps := 0
		for i := 1; i < len(pts)-1; i++ {
			d := geo.Distance(pts[i-1].Point, pts[i].Point)
			if d > eps*(1+1e-6) {
				t.Fatalf("user %s gap %d = %.3f m, want <= %g", tr.User, i, d, eps)
			}
			if d < eps*0.5 {
				shortGaps++
			}
		}
		if n := len(pts) - 2; n > 0 && shortGaps > n/2 {
			t.Errorf("user %s: %d/%d gaps far below epsilon — spacing not uniform", tr.User, shortGaps, n)
		}
		for i := 1; i < len(pts); i++ {
			if !pts[i].Time.After(pts[i-1].Time) {
				t.Fatalf("user %s: published times not strictly increasing at %d", tr.User, i)
			}
		}
	}
}

// TestStreamingCapabilityResolution pins down which registry specs
// resolve to streaming adapters and that the capability survives the
// FromSpec name-normalization wrapper.
func TestStreamingCapabilityResolution(t *testing.T) {
	for _, spec := range []string{"raw", "promesse", "promesse(epsilon=200,window=800)", "geoi(0.01)"} {
		m := MustFromSpec(spec)
		f, ok := AsStreaming(m)
		if !ok {
			t.Errorf("AsStreaming(%q) = false, want streaming-capable", spec)
			continue
		}
		sm := f("alice")
		p := Point{Point: geo.Point{Lat: 45.76, Lng: 4.83}, Time: time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)}
		out := append(sm.Push(p), sm.Flush()...)
		if len(out) == 0 {
			t.Errorf("%q: single point in, nothing out after flush", spec)
		}
	}
	for _, spec := range []string{"pipeline", "w4m(k=2,delta=500)"} {
		if _, ok := AsStreaming(MustFromSpec(spec)); ok {
			t.Errorf("AsStreaming(%q) = true; mix-zone/w4m mechanisms need the full population and cannot stream", spec)
		}
	}
	names := StreamingMechanisms()
	want := []string{"geoi", "promesse", "raw"}
	if len(names) != len(want) {
		t.Fatalf("StreamingMechanisms() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("StreamingMechanisms() = %v, want %v", names, want)
		}
	}
}

// TestStreamPseudonymizeFactory exercises the public pseudonymizer
// factory end to end.
func TestStreamPseudonymizeFactory(t *testing.T) {
	f := StreamPseudonymize("p", 1)
	sm := f("alice")
	p := Point{Point: geo.Point{Lat: 45.76, Lng: 4.83}, Time: time.Unix(0, 0)}
	out := sm.Push(p)
	if len(out) != 1 || !out[0].Point.Equal(p.Point) {
		t.Fatalf("pseudonymizer altered points: %v", out)
	}
	r, ok := interface{}(sm).(interface{ OutUser(string) string })
	if !ok || r.OutUser("alice") == "alice" {
		t.Fatal("pseudonymizer does not relabel")
	}
}

// TestStreamingPromesseBoundedMemory checks the windowed smoother holds
// back at most ~Window/Epsilon samples however long the trace runs —
// the bounded-memory property the online subsystem exists for.
func TestStreamingPromesseBoundedMemory(t *testing.T) {
	f, _ := AsStreaming(MustFromSpec("promesse(epsilon=100,window=400)"))
	sm := f("u")
	p := geo.Point{Lat: 45.76, Lng: 4.83}
	ts := time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	emitted := 0
	for i := 0; i < 5000; i++ {
		emitted += len(sm.Push(Point{Point: p, Time: ts}))
		p = geo.Offset(p, 0, 120)
		ts = ts.Add(30 * time.Second)
	}
	withheld := 5000*120/100 - emitted // samples generated minus released
	if withheld > 10 {
		t.Errorf("smoother withholding %d samples, want <= window/epsilon+slack", withheld)
	}
	if math.Abs(float64(len(sm.Flush()))-float64(withheld)) > 2 {
		t.Errorf("flush released %d, expected ~%d", emitted, withheld)
	}
}

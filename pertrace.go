package mobipriv

import (
	"context"
)

// PerTraceFunc anonymizes ONE trace independently of every other trace
// in the dataset. Returning (nil, nil) withholds (drops) the trace —
// the per-trace counterpart of a StageReport's Dropped list. The input
// trace must not be modified.
//
// The per-trace contract is strict equivalence: applying the function
// to each trace of a dataset must produce exactly the traces that the
// mechanism's batch Apply would publish for that dataset (same points,
// same drops). Mechanisms that need cross-trace context — mix-zone
// detection, (k,δ)-aggregation — cannot satisfy it and do not expose
// the capability.
type PerTraceFunc func(ctx context.Context, tr *Trace) (*Trace, error)

// PerTracer is the optional capability a Mechanism grows when each
// trace can be anonymized in isolation: PerTrace returns the function
// the store-native Runner path (Runner.RunStore) fans across its worker
// pool. Resolve it with AsPerTrace, which sees through the wrappers
// FromSpec applies.
type PerTracer interface {
	Mechanism
	PerTrace() PerTraceFunc
}

// AsPerTrace reports whether the mechanism can run trace-by-trace and
// returns its per-trace function. It unwraps the name-normalization and
// capability layers added by FromSpec and WithStreaming, so specs like
// "geoi(0.01)" or "promesse(epsilon=200)" resolve to their per-trace
// forms.
func AsPerTrace(m Mechanism) (PerTraceFunc, bool) {
	for m != nil {
		// A nil PerTrace means "not in this configuration" (e.g. a
		// pipeline containing the mix-zone stage): keep unwrapping.
		if p, ok := m.(PerTracer); ok {
			if fn := p.PerTrace(); fn != nil {
				return fn, true
			}
		}
		u, ok := m.(interface{ Unwrap() Mechanism })
		if !ok {
			return nil, false
		}
		m = u.Unwrap()
	}
	return nil, false
}

// PerTraceMechanisms returns the sorted names of registered mechanisms
// whose default spec resolves to a per-trace-capable mechanism — the
// ones eligible for store-native runs.
func PerTraceMechanisms() []string {
	var out []string
	for _, name := range Mechanisms() {
		m, err := FromSpec(name)
		if err != nil {
			continue
		}
		if _, ok := AsPerTrace(m); ok {
			out = append(out, name)
		}
	}
	return out
}

// WithPerTrace attaches a per-trace capability to a mechanism; used by
// the built-in registrations and available to custom ones. The function
// must satisfy the PerTraceFunc equivalence contract with m.Apply.
func WithPerTrace(m Mechanism, fn PerTraceFunc) Mechanism {
	return perTraced{Mechanism: m, fn: fn}
}

type perTraced struct {
	Mechanism
	fn PerTraceFunc
}

func (p perTraced) PerTrace() PerTraceFunc { return p.fn }

// Unwrap lets the other capability probes (AsStreaming) see through
// this layer.
func (p perTraced) Unwrap() Mechanism { return p.Mechanism }

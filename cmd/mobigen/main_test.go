package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobipriv/internal/store"
	"mobipriv/internal/traceio"
)

func TestRunCSVToStdout(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-model", "commuter", "-users", "3", "-sampling", "5m"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	d, err := traceio.ReadCSV(&out)
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if d.Len() != 3 {
		t.Fatalf("generated %d users, want 3", d.Len())
	}
}

func TestRunWritesFilesAndStays(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.csv")
	staysPath := filepath.Join(dir, "stays.csv")
	err := run([]string{
		"-model", "commuter", "-users", "2", "-sampling", "5m",
		"-out", dataPath, "-stays", staysPath,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := traceio.ReadCSV(f)
	if err != nil || d.Len() != 2 {
		t.Fatalf("data file: %v, %v", d, err)
	}
	stays, err := os.ReadFile(staysPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(stays), "user,lat,lng,enter,leave") {
		t.Fatalf("stays header missing: %q", string(stays)[:40])
	}
	if len(strings.Split(strings.TrimSpace(string(stays)), "\n")) < 3 {
		t.Fatal("expected at least 2 stay rows")
	}
}

func TestRunModels(t *testing.T) {
	for _, model := range []string{"commuter", "taxi", "rw"} {
		t.Run(model, func(t *testing.T) {
			var out bytes.Buffer
			err := run([]string{"-model", model, "-users", "2", "-sampling", "5m"}, &out)
			if err != nil {
				t.Fatal(err)
			}
			if out.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestRunFormats(t *testing.T) {
	for _, format := range []string{"csv", "jsonl", "geojson"} {
		t.Run(format, func(t *testing.T) {
			var out bytes.Buffer
			err := run([]string{"-users", "2", "-sampling", "10m", "-format", format}, &out)
			if err != nil {
				t.Fatal(err)
			}
			if out.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

// TestRunStoreFormat generates straight into the native store format.
func TestRunStoreFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.mstore")
	err := run([]string{"-model", "rw", "-users", "5", "-sampling", "5m", "-format", "store", "-out", path, "-shards", "3"}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(path)
	if err != nil {
		t.Fatalf("generated store unreadable: %v", err)
	}
	defer s.Close()
	man := s.Manifest()
	if man.Users != 5 || man.Shards != 3 || man.Points == 0 {
		t.Fatalf("manifest = %+v, want 5 users in 3 shards", man)
	}
	d, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5 {
		t.Fatalf("loaded %d users, want 5", d.Len())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-model", "spaceship"},
		{"-format", "xml"},
		{"-users", "-3"},
		{"-format", "store"}, // store requires -out
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunSeedDeterminism(t *testing.T) {
	gen := func(seed string) string {
		var out bytes.Buffer
		if err := run([]string{"-users", "2", "-sampling", "10m", "-seed", seed}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if gen("7") != gen("7") {
		t.Fatal("same seed must give identical output")
	}
	if gen("7") == gen("8") {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateRespectsOverrides(t *testing.T) {
	g, err := generate("commuter", 4, 1, 2, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dataset.Len() != 4 {
		t.Fatalf("users = %d", g.Dataset.Len())
	}
	from, to, ok := g.Dataset.TimeSpan()
	if !ok || to.Sub(from) < 36*time.Hour {
		t.Fatalf("2 days requested, span = %v", to.Sub(from))
	}
}

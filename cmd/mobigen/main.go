// Command mobigen generates synthetic mobility datasets with ground
// truth, standing in for the real-life datasets of the paper's planned
// evaluation (see DESIGN.md §2).
//
// Usage:
//
//	mobigen -model commuter -users 50 -seed 1 -out data.csv -stays stays.csv
//	mobigen -model taxi -format geojson -out fleet.geojson
//	mobigen -model rw -users 100000 -format store -out big.mstore
//
// Formats: csv (default), jsonl, geojson (write-only visualization),
// store (the native sharded on-disk format of internal/store — no text
// round-trip on the way to the batch tools).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"mobipriv/internal/cliutil"
	"mobipriv/internal/store"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobigen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobigen", flag.ContinueOnError)
	var (
		model    = fs.String("model", "commuter", "workload model: commuter, taxi, rw")
		users    = fs.Int("users", 0, "number of users/vehicles (0 = model default)")
		seed     = fs.Int64("seed", 1, "generator seed")
		days     = fs.Int("days", 0, "days to simulate (commuter model, 0 = default)")
		sampling = fs.Duration("sampling", 0, "GPS sampling interval (0 = model default)")
		out      = fs.String("out", "", "output file (default stdout; a directory for -format store)")
		format   = fs.String("format", "csv", "output format: csv, jsonl, geojson, store")
		shards   = fs.Int("shards", 8, "segment count for -format store")
		staysOut = fs.String("stays", "", "also write ground-truth stays (CSV) to this file")
		verbose  = cliutil.Verbose(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *users < 0 || *days < 0 || *sampling < 0 {
		return fmt.Errorf("users, days and sampling must be non-negative")
	}

	g, err := generate(*model, *users, *seed, *days, *sampling)
	if err != nil {
		return err
	}

	if *format == "store" {
		// The store format writes a sharded directory, not a stream: a
		// synthetic million-user dataset lands in the native format the
		// batch tools scan, with no text round-trip.
		if *out == "" {
			return fmt.Errorf("-format store requires -out (a directory, conventionally .mstore)")
		}
		if err := store.WriteDataset(*out, g.Dataset, store.Options{Shards: *shards, Overwrite: true}); err != nil {
			return err
		}
	} else {
		w := stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return fmt.Errorf("create output: %w", err)
			}
			defer f.Close()
			w = f
		}
		if err := writeDataset(w, g.Dataset, *format); err != nil {
			return err
		}
	}
	if *staysOut != "" {
		f, err := os.Create(*staysOut)
		if err != nil {
			return fmt.Errorf("create stays output: %w", err)
		}
		defer f.Close()
		if err := writeStays(f, g.Stays); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "generated %d users, %d points, %d ground-truth stays\n",
		g.Dataset.Len(), g.Dataset.TotalPoints(), len(g.Stays))
	if *verbose {
		if from, to, ok := g.Dataset.TimeSpan(); ok {
			fmt.Fprintf(os.Stderr, "span %s .. %s, bbox %s\n",
				from.Format(time.RFC3339), to.Format(time.RFC3339), g.Dataset.Bounds())
		}
	}
	return nil
}

func generate(model string, users int, seed int64, days int, sampling time.Duration) (*synth.Generated, error) {
	switch model {
	case "commuter":
		cfg := synth.DefaultCommuterConfig()
		cfg.Seed = seed
		if users > 0 {
			cfg.Users = users
		}
		if days > 0 {
			cfg.Days = days
		}
		if sampling > 0 {
			cfg.Sampling = sampling
		}
		return synth.Commuters(cfg)
	case "taxi":
		cfg := synth.DefaultTaxiConfig()
		cfg.Seed = seed
		if users > 0 {
			cfg.Vehicles = users
		}
		if sampling > 0 {
			cfg.Sampling = sampling
		}
		return synth.TaxiFleet(cfg)
	case "rw":
		cfg := synth.DefaultRandomWaypointConfig()
		cfg.Seed = seed
		if users > 0 {
			cfg.Users = users
		}
		if sampling > 0 {
			cfg.Sampling = sampling
		}
		return synth.RandomWaypoint(cfg)
	default:
		return nil, fmt.Errorf("unknown model %q (want commuter, taxi or rw)", model)
	}
}

func writeDataset(w io.Writer, d *trace.Dataset, format string) error {
	switch format {
	case "csv":
		return traceio.WriteCSV(w, d)
	case "jsonl":
		return traceio.WriteJSONL(w, d)
	case "geojson":
		return traceio.WriteGeoJSON(w, d)
	default:
		return fmt.Errorf("unknown format %q (want csv, jsonl, geojson or store)", format)
	}
}

func writeStays(w io.Writer, stays []synth.Stay) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"user", "lat", "lng", "enter", "leave"}); err != nil {
		return err
	}
	for _, s := range stays {
		rec := []string{
			s.User,
			strconv.FormatFloat(s.Center.Lat, 'f', -1, 64),
			strconv.FormatFloat(s.Center.Lng, 'f', -1, 64),
			s.Enter.UTC().Format(time.RFC3339),
			s.Leave.UTC().Format(time.RFC3339),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobipriv"
	"mobipriv/internal/risk"
	"mobipriv/internal/store"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// startServer builds a server around the config, runs its engine, and
// returns an httptest server plus a shutdown function.
func startServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server, func()) {
	t.Helper()
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.eng.Run(context.Background()) }()
	hs := httptest.NewServer(srv.handler())
	stop := func() {
		hs.Close()
		srv.eng.Close()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	return srv, hs, stop
}

func testDataset(t *testing.T, users int) *trace.Dataset {
	t.Helper()
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = users
	cfg.Sampling = 2 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g.Dataset
}

func postNDJSON(t *testing.T, url string, d *trace.Dataset) int {
	t.Helper()
	var body bytes.Buffer
	if err := traceio.WriteJSONL(&body, d); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/ingest", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var out struct {
		Accepted int `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Accepted
}

func postFlush(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url+"/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d", resp.StatusCode)
	}
}

// TestServeGeoIEquivalence is the serving-path half of the
// replay-equivalence acceptance: NDJSON in over HTTP, flush, and the
// sink file matches the batch mechanism byte for byte.
func TestServeGeoIEquivalence(t *testing.T) {
	d := testDataset(t, 6)
	var sink bytes.Buffer
	srv, hs, stop := startServer(t, serverConfig{Spec: "geoi(epsilon=0.01,seed=7)", Shards: 4})
	defer stop()
	srv.sinkFile = &sink // safe: set before any ingest

	if got := postNDJSON(t, hs.URL, d); got != d.TotalPoints() {
		t.Fatalf("accepted %d points, want %d", got, d.TotalPoints())
	}
	postFlush(t, hs.URL)

	got, err := traceio.ReadJSONL(&sink)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := mobipriv.MustFromSpec("geoi(epsilon=0.01,seed=7)").Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	want := batch.Dataset
	if got.Len() != want.Len() {
		t.Fatalf("served %d users, batch %d", got.Len(), want.Len())
	}
	for _, wtr := range want.Traces() {
		gtr := got.ByUser(wtr.User)
		if gtr == nil || gtr.Len() != wtr.Len() {
			t.Fatalf("user %s: served %v, want %d points", wtr.User, gtr, wtr.Len())
		}
		for i := range wtr.Points {
			g, w := gtr.Points[i], wtr.Points[i]
			if g.Lat != w.Lat || g.Lng != w.Lng || !g.Time.Equal(w.Time) {
				t.Fatalf("user %s point %d: served %v, batch %v", wtr.User, i, g, w)
			}
		}
	}
}

func TestServeCSVIngestAndStats(t *testing.T) {
	d := testDataset(t, 3)
	_, hs, stop := startServer(t, serverConfig{Spec: "raw", Shards: 2})
	defer stop()
	var body bytes.Buffer
	if err := traceio.WriteCSV(&body, d); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/ingest", "text/csv", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv ingest status %d", resp.StatusCode)
	}
	postFlush(t, hs.URL)

	resp, err = http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.In != uint64(d.TotalPoints()) || st.Out != uint64(d.TotalPoints()) {
		t.Errorf("stats in=%d out=%d, want %d each", st.In, st.Out, d.TotalPoints())
	}
	if st.Mechanism != "raw" || len(st.Shards) != 2 || st.ActiveUsers != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestServeOutStreams subscribes to /out before ingesting and reads the
// anonymized stream live.
func TestServeOutStreams(t *testing.T) {
	d := testDataset(t, 2)
	_, hs, stop := startServer(t, serverConfig{Spec: "raw", Shards: 1, Pseudonym: "p", Seed: 1})
	defer stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", hs.URL+"/out", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	postNDJSON(t, hs.URL, d)
	postFlush(t, hs.URL)

	sc := bufio.NewScanner(resp.Body)
	seen := 0
	for seen < d.TotalPoints() && sc.Scan() {
		line := sc.Text()
		var rec struct {
			User string `json:"user"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad /out line %q: %v", line, err)
		}
		if !strings.HasPrefix(rec.User, "p") {
			t.Fatalf("output user %q not pseudonymized", rec.User)
		}
		seen++
	}
	if seen != d.TotalPoints() {
		t.Fatalf("streamed %d points, want %d", seen, d.TotalPoints())
	}
}

// TestServeStoreSink streams through the engine into a native store
// sink and checks the finalized store holds exactly the served points —
// the loop that lets batch tools read what the service wrote.
func TestServeStoreSink(t *testing.T) {
	d := testDataset(t, 4)
	srv, hs, stop := startServer(t, serverConfig{Spec: "raw", Shards: 3})
	path := filepath.Join(t.TempDir(), "sink.mstore")
	sw, err := store.Create(path, store.Options{Shards: 2, BlockPoints: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv.sinkStore = sw // safe: set before any ingest

	postNDJSON(t, hs.URL, d)
	postFlush(t, hs.URL)
	stop()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := store.Open(path)
	if err != nil {
		t.Fatalf("sink store unreadable: %v", err)
	}
	defer s.Close()
	got, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.TotalPoints() != d.TotalPoints() {
		t.Fatalf("sink store = %v, want %v", got, d)
	}
	// The raw mechanism passes points through, so the store holds the
	// input up to the documented fixed-point quantization.
	for _, wtr := range d.Traces() {
		gtr := got.ByUser(wtr.User)
		if gtr == nil || gtr.Len() != wtr.Len() {
			t.Fatalf("user %s: stored %v, want %d points", wtr.User, gtr, wtr.Len())
		}
		for i := range wtr.Points {
			g, w := gtr.Points[i], wtr.Points[i]
			if g.Time.UnixMicro() != w.Time.UnixMicro() {
				t.Fatalf("user %s point %d: time %v, want %v", wtr.User, i, g.Time, w.Time)
			}
			if diff := g.Lat - w.Lat; diff > 6e-8 || diff < -6e-8 {
				t.Fatalf("user %s point %d: lat %v, want %v", wtr.User, i, g.Lat, w.Lat)
			}
			if diff := g.Lng - w.Lng; diff > 6e-8 || diff < -6e-8 {
				t.Fatalf("user %s point %d: lng %v, want %v", wtr.User, i, g.Lng, w.Lng)
			}
		}
	}
}

func getStats(t *testing.T, url string) statsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSinkReopenAcrossRestart is the continuous-ingest acceptance: two
// server lifecycles share one .mstore sink path, the second reopening
// what the first committed. The restarted server must report the
// recovery pass over /stats and /metrics, and the final store must hold
// the union — each lifecycle's /stats point count summing to the
// store's total.
func TestSinkReopenAcrossRestart(t *testing.T) {
	d := testDataset(t, 6)
	all := d.Traces()
	d1, err := trace.NewDataset(all[:3])
	if err != nil {
		t.Fatal(err)
	}
	d2, err := trace.NewDataset(all[3:])
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sink.mstore")

	// Lifecycle 1: -sink-fresh, the path must not exist yet.
	srv1, hs1, stop1 := startServer(t, serverConfig{Spec: "raw", Shards: 3})
	if err := srv1.attachStoreSink(path, true); err != nil {
		t.Fatal(err)
	}
	postNDJSON(t, hs1.URL, d1)
	postFlush(t, hs1.URL)
	st1 := getStats(t, hs1.URL)
	if st1.SinkPoints != uint64(d1.TotalPoints()) {
		t.Fatalf("lifecycle 1 sink_store_points = %d, want %d", st1.SinkPoints, d1.TotalPoints())
	}
	stop1()
	if err := srv1.sinkStore.Close(); err != nil {
		t.Fatal(err)
	}

	// -sink-fresh over an existing store must refuse, not overwrite.
	srvRefuse, _, stopRefuse := startServer(t, serverConfig{Spec: "raw", Shards: 1})
	if err := srvRefuse.attachStoreSink(path, true); err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("fresh attach over existing store: err = %v, want ErrExists", err)
	}
	stopRefuse()

	// Lifecycle 2: default reopen-for-append extends the same store.
	srv2, hs2, stop2 := startServer(t, serverConfig{Spec: "raw", Shards: 3})
	if err := srv2.attachStoreSink(path, false); err != nil {
		t.Fatalf("reopen for append: %v", err)
	}
	postNDJSON(t, hs2.URL, d2)
	postFlush(t, hs2.URL)
	st2 := getStats(t, hs2.URL)
	if st2.SinkPoints != uint64(d2.TotalPoints()) {
		t.Fatalf("lifecycle 2 sink_store_points = %d, want %d", st2.SinkPoints, d2.TotalPoints())
	}
	if st2.SinkRecov != 1 || st2.SinkGens != 1 {
		t.Fatalf("lifecycle 2 recovery stats = runs %d gens %d, want 1 committed generation recovered once", st2.SinkRecov, st2.SinkGens)
	}
	// The same counters must be scrapable from /metrics.
	resp, err := http.Get(hs2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{"store_recovery_runs 1", "store_generations 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	stop2()
	if err := srv2.sinkStore.Close(); err != nil {
		t.Fatal(err)
	}

	// The finalized store holds both lifecycles' output, and the per-
	// lifecycle /stats counts sum to its total.
	s, err := store.Open(path)
	if err != nil {
		t.Fatalf("reopened sink store unreadable: %v", err)
	}
	defer s.Close()
	if g := s.Manifest().Generations; g != 2 {
		t.Errorf("store has %d generations, want 2", g)
	}
	got, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("store holds %d users, want %d", got.Len(), d.Len())
	}
	if total := uint64(got.TotalPoints()); total != st1.SinkPoints+st2.SinkPoints {
		t.Fatalf("store holds %d points, lifecycles reported %d + %d", total, st1.SinkPoints, st2.SinkPoints)
	}
	for _, wtr := range d.Traces() {
		gtr := got.ByUser(wtr.User)
		if gtr == nil || gtr.Len() != wtr.Len() {
			t.Fatalf("user %s: stored %v, want %d points", wtr.User, gtr, wtr.Len())
		}
	}
}

func TestServeRejectsNonStreamingSpec(t *testing.T) {
	_, err := newServer(serverConfig{Spec: "pipeline"})
	if err == nil || !strings.Contains(err.Error(), "streaming-capable") {
		t.Fatalf("err = %v, want streaming-capable listing", err)
	}
	if _, err := newServer(serverConfig{Spec: "nope"}); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestServeBadIngest(t *testing.T) {
	_, hs, stop := startServer(t, serverConfig{Spec: "raw"})
	defer stop()
	resp, err := http.Post(hs.URL+"/ingest", "application/x-ndjson", strings.NewReader("{not json\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ingest status %d, want 400", resp.StatusCode)
	}
}

// riskDataset synthesizes multi-day commuters: the home/work dwells
// recur every day, which is exactly the recurrence the risk monitor
// flags.
func riskDataset(t *testing.T, users, days int) *trace.Dataset {
	t.Helper()
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = users
	cfg.Days = days
	cfg.Sampling = 2 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g.Dataset
}

func getRisk(t *testing.T, url string) riskResponse {
	t.Helper()
	resp, err := http.Get(url + "/risk")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/risk status %d", resp.StatusCode)
	}
	var rr riskResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return rr
}

// TestServeRiskFlagsRawNotPromesse is the acceptance check for the live
// monitor: serving raw data, every multi-day commuter is flagged for a
// recurrent POI; serving promesse-smoothed data, nobody is, because the
// published points are spaced at epsilon (100 m) and never dwell within
// the monitor's 50 m stay diameter.
func TestServeRiskFlagsRawNotPromesse(t *testing.T) {
	d := riskDataset(t, 3, 3)

	// Raw path, with pseudonymized output: the monitor must still key
	// risk by the INPUT identity — that is who the operator can warn.
	srv, hs, stop := startServer(t, serverConfig{Spec: "raw", Shards: 3, Pseudonym: "p", Seed: 1, RiskMinDays: 2})
	postNDJSON(t, hs.URL, d)
	postFlush(t, hs.URL)

	rr := getRisk(t, hs.URL)
	if rr.MinDays != 2 || rr.Users != d.Len() {
		t.Fatalf("risk = %+v, want min_days=2 users=%d", rr, d.Len())
	}
	if rr.Flagged != d.Len() {
		t.Fatalf("raw serving flagged %d/%d users, want all: %+v", rr.Flagged, d.Len(), rr.Risks)
	}
	for _, ur := range rr.Risks {
		if !ur.Flagged || ur.MaxDays < 2 || ur.TopPOI == nil {
			t.Errorf("user %s: %+v, want flagged with a top POI across >=2 days", ur.User, ur)
		}
		if d.ByUser(ur.User) == nil {
			t.Errorf("risk keyed by %q, want an input (pre-pseudonym) user", ur.User)
		}
	}

	// Single-user view and /stats counts.
	one := d.Traces()[0].User
	resp, err := http.Get(hs.URL + "/risk?user=" + one)
	if err != nil {
		t.Fatal(err)
	}
	var ur risk.UserRisk
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ur.User != one || !ur.Flagged {
		t.Errorf("/risk?user=%s = %+v", one, ur)
	}
	if resp, err = http.Get(hs.URL + "/risk?user=no-such-user"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown user status %d, want 404", resp.StatusCode)
	}
	users, flagged := srv.mon.Counts()
	resp, err = http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.RiskUsers != users || st.RiskFlagged != flagged || st.RiskFlagged != d.Len() {
		t.Errorf("stats risk counts = %d/%d, want %d/%d", st.RiskUsers, st.RiskFlagged, users, flagged)
	}

	// Reset clears the slate.
	resp, err = http.Post(hs.URL+"/risk/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rr = getRisk(t, hs.URL); rr.Users != 0 || rr.Flagged != 0 {
		t.Errorf("after reset: %+v, want empty", rr)
	}
	stop()

	// Promesse path: same input, nobody flagged.
	_, hs2, stop2 := startServer(t, serverConfig{Spec: "promesse", Shards: 3, RiskMinDays: 2})
	defer stop2()
	postNDJSON(t, hs2.URL, d)
	postFlush(t, hs2.URL)
	rr = getRisk(t, hs2.URL)
	if rr.Flagged != 0 {
		t.Fatalf("promesse serving flagged %d users, want 0: %+v", rr.Flagged, rr.Risks)
	}
}

// TestServeRiskDisabled pins that -risk-min-days 0 removes the monitor
// and its endpoints 404.
func TestServeRiskDisabled(t *testing.T) {
	srv, hs, stop := startServer(t, serverConfig{Spec: "raw", Shards: 1})
	defer stop()
	if srv.mon != nil {
		t.Fatal("monitor built with RiskMinDays=0")
	}
	for _, req := range []func() (*http.Response, error){
		func() (*http.Response, error) { return http.Get(hs.URL + "/risk") },
		func() (*http.Response, error) { return http.Post(hs.URL+"/risk/reset", "", nil) },
	} {
		resp, err := req()
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status %d, want 404 when disabled", resp.StatusCode)
		}
	}
}

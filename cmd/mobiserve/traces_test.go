package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	otrace "mobipriv/internal/obs/trace"
	"mobipriv/internal/traceio"
)

// TestDebugTraces drives sampled traffic through a traced server and
// asserts the zpages contract of GET /debug/traces: recent roots, the
// slowest exemplar per latency bucket, and per-kind summaries that
// include the engine decomposition spans.
func TestDebugTraces(t *testing.T) {
	_, hs, stop := startServer(t, serverConfig{Spec: "geoi(epsilon=0.01,seed=7)", Shards: 4, TraceSample: 1})
	defer stop()

	d := testDataset(t, 6)
	postNDJSON(t, hs.URL, d)
	postFlush(t, hs.URL)

	resp, err := http.Get(hs.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/traces status %d", resp.StatusCode)
	}
	var snap otrace.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}

	if snap.SampleRate != 1 {
		t.Fatalf("sample_rate %v, want 1", snap.SampleRate)
	}
	if snap.Published == 0 || len(snap.Recent) == 0 {
		t.Fatalf("no published traces: published=%d recent=%d", snap.Published, len(snap.Recent))
	}
	if len(snap.Exemplars) == 0 {
		t.Fatal("no latency-bucket exemplars")
	}
	for i, ex := range snap.Exemplars {
		if ex.Root.DurationUs < ex.BucketFloorUs {
			t.Errorf("exemplar %d: duration %dus below bucket floor %dus", i, ex.Root.DurationUs, ex.BucketFloorUs)
		}
		if i > 0 && ex.Bucket <= snap.Exemplars[i-1].Bucket {
			t.Errorf("exemplar buckets not strictly increasing: %d after %d", ex.Bucket, snap.Exemplars[i-1].Bucket)
		}
	}
	kinds := make(map[string]bool)
	for _, k := range snap.Kinds {
		kinds[k.Kind] = true
	}
	for _, want := range []string{"/ingest", "engine.batch", "engine.queue_wait", "engine.process", "engine.sink"} {
		if !kinds[want] {
			t.Errorf("span kind %q missing from summaries (have %v)", want, snap.Kinds)
		}
	}

	// The text rendering is the human half of the same snapshot.
	resp, err = http.Get(hs.URL + "/debug/traces?format=text")
	if err != nil {
		t.Fatal(err)
	}
	raw, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/traces text status %d", resp.StatusCode)
	}
	for _, needle := range []string{"recent roots", "exemplars (slowest per latency bucket):", "span kinds:"} {
		if !strings.Contains(string(raw), needle) {
			t.Errorf("text zpage missing %q", needle)
		}
	}
}

// TestIngestTraceparentEcho pins trace-context propagation over HTTP:
// a client-supplied traceparent is adopted (same trace ID back in the
// response header, new server-side parent span) and a missing header
// mints a fresh trace.
func TestIngestTraceparentEcho(t *testing.T) {
	_, hs, stop := startServer(t, serverConfig{Spec: "raw", Shards: 1, TraceSample: 1})
	defer stop()

	d := testDataset(t, 1)
	var body bytes.Buffer
	if err := traceio.WriteJSONL(&body, d); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/ingest", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	const client = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req.Header.Set("traceparent", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	echo := resp.Header.Get("traceparent")
	id, span, sampled, ok := otrace.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echo)
	}
	wantID, clientSpan, _, _ := otrace.ParseTraceparent(client)
	if id != wantID {
		t.Fatalf("server rewrote trace ID: got %v, want %v", id, wantID)
	}
	if span == clientSpan {
		t.Fatal("server echoed the client span ID instead of minting its own")
	}
	if !sampled {
		t.Fatal("sampled flag lost in echo")
	}

	// Without a header the server mints a trace of its own.
	resp, err = http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, _, _, ok := otrace.ParseTraceparent(resp.Header.Get("traceparent")); !ok {
		t.Fatalf("minted traceparent %q does not parse", resp.Header.Get("traceparent"))
	}
}

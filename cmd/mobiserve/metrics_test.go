package main

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mobipriv/internal/load"
)

// scrape fetches /metrics and parses the exposition into a map from
// series (name plus label block) to value, validating the overall
// line discipline along the way.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		var v float64
		switch valStr {
		case "+Inf":
			v = math.Inf(1)
		default:
			var err error
			v, err = strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("unparseable value in line %q: %v", line, err)
			}
		}
		out[series] = v
	}
	return out
}

// TestMetricsEndpoint pins /metrics: the exposition parses, carries
// HELP/TYPE lines, and the engine counters reflect the ingested
// traffic exactly.
func TestMetricsEndpoint(t *testing.T) {
	d := testDataset(t, 5)
	_, hs, stop := startServer(t, serverConfig{Spec: "raw", Shards: 4, RiskMinDays: 2})
	defer stop()

	if got := postNDJSON(t, hs.URL, d); got != d.TotalPoints() {
		t.Fatalf("accepted %d, want %d", got, d.TotalPoints())
	}
	postFlush(t, hs.URL)

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# HELP stream_points_in_total ",
		"# TYPE stream_points_in_total counter",
		"# TYPE stream_active_users gauge",
		"# TYPE mobiserve_http_request_seconds histogram",
		`mobiserve_http_request_seconds_bucket{route="/ingest",le="+Inf"}`,
		`stream_shard_queue_depth{shard="0"}`,
		"risk_users ",
		"mobiserve_sink_write_failures_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	m := parseExposition(t, text)
	if got := m["stream_points_in_total"]; got != float64(d.TotalPoints()) {
		t.Fatalf("stream_points_in_total = %v, want %d", got, d.TotalPoints())
	}
	if got := m["stream_points_out_total"]; got != float64(d.TotalPoints()) {
		// raw republishes every point.
		t.Fatalf("stream_points_out_total = %v, want %d", got, d.TotalPoints())
	}
	if got := m[`mobiserve_http_requests_total{route="/ingest"}`]; got != 1 {
		t.Fatalf("ingest request count = %v, want 1", got)
	}
	if got := m[`mobiserve_http_request_seconds_count{route="/ingest"}`]; got != 1 {
		t.Fatalf("ingest latency count = %v, want 1", got)
	}
}

// TestStatsMetricsEquivalence is the acceptance check that /stats and
// /metrics cannot disagree: every scalar in the JSON view equals the
// corresponding registry series, because the JSON view reads the
// registry.
func TestStatsMetricsEquivalence(t *testing.T) {
	d := testDataset(t, 6)
	_, hs, stop := startServer(t, serverConfig{Spec: "promesse(epsilon=150)", Shards: 3, RiskMinDays: 2})
	defer stop()
	postNDJSON(t, hs.URL, d)
	postFlush(t, hs.URL)

	// Scrape metrics FIRST, then /stats: counters are monotone and all
	// traffic already arrived, so the values must agree exactly.
	m := scrape(t, hs.URL)
	resp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	checks := []struct {
		series string
		stats  float64
	}{
		{"stream_points_in_total", float64(st.In)},
		{"stream_points_out_total", float64(st.Out)},
		{"stream_evicted_users_total", float64(st.Evicted)},
		{"stream_push_stalls_total", float64(st.Stalls)},
		{"stream_active_users", float64(st.ActiveUsers)},
		{"mobiserve_dropped_subscriber_points_total", float64(st.DroppedSub)},
		{"mobiserve_sink_write_failures_total", float64(st.SinkFails)},
		{"risk_users", float64(st.RiskUsers)},
		{"risk_flagged_users", float64(st.RiskFlagged)},
	}
	for _, c := range checks {
		got, ok := m[c.series]
		if !ok {
			t.Errorf("series %s absent from /metrics", c.series)
			continue
		}
		if got != c.stats {
			t.Errorf("%s: /metrics %v != /stats %v", c.series, got, c.stats)
		}
	}
	if st.In != uint64(d.TotalPoints()) {
		t.Fatalf("stats points_in = %d, want %d", st.In, d.TotalPoints())
	}
}

// TestPprofOptIn pins that the debug endpoints exist only behind
// -pprof.
func TestPprofOptIn(t *testing.T) {
	_, hs, stop := startServer(t, serverConfig{Spec: "raw", Shards: 1, Pprof: true})
	defer stop()
	resp, err := http.Get(hs.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d with -pprof", resp.StatusCode)
	}

	_, hs2, stop2 := startServer(t, serverConfig{Spec: "raw", Shards: 1})
	defer stop2()
	resp, err = http.Get(hs2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof endpoints mounted without -pprof")
	}
}

// TestLoadSmoke is the CI load-smoke: an in-process mobiserve driven
// by a short deterministic internal/load run. It asserts the driver
// and server agree on the point count, the BENCH artifact lands with
// nonzero points/s and the server-side p99 decomposition (queue-wait /
// process / sink), and /metrics still parses afterwards.
func TestLoadSmoke(t *testing.T) {
	_, hs, stop := startServer(t, serverConfig{Spec: "geoi(epsilon=0.01,seed=7)", Shards: 4, RiskMinDays: 2, TraceSample: 1})
	defer stop()

	res, err := load.Run(context.Background(), load.Config{
		Target:    hs.URL,
		Users:     10,
		Seed:      3,
		MaxPoints: 2000,
		Batch:     200,
		Workers:   4,
		Flush:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points == 0 || res.Accepted != res.Points || res.Errors != 0 {
		t.Fatalf("bad run: %+v", res)
	}
	if res.PointsPerS <= 0 {
		t.Fatalf("points_per_s = %v", res.PointsPerS)
	}

	// The driver snapshots /stats around the run, so the result must
	// carry the server-side latency decomposition.
	sd := res.Server
	if sd == nil {
		t.Fatal("result carries no server decomposition")
	}
	if sd.PointsIn != int64(res.Points) {
		t.Fatalf("server saw %d points, driver sent %d", sd.PointsIn, res.Points)
	}
	if sd.QueueWait.Count == 0 || sd.QueueWait.Count != sd.Process.Count || sd.Process.Count != sd.Sink.Count {
		t.Fatalf("stage counts diverge: queue-wait %d process %d sink %d",
			sd.QueueWait.Count, sd.Process.Count, sd.Sink.Count)
	}
	if sum := sd.QueueWait.ShareP99 + sd.Process.ShareP99 + sd.Sink.ShareP99; math.Abs(sum-1) > 1e-9 {
		t.Fatalf("p99 shares sum to %v, want 1", sum)
	}

	bench := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := load.WriteBench(bench, "test load-smoke", res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var b load.Bench
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Results.PointsPerS <= 0 {
		t.Fatalf("bench points_per_s = %v", b.Results.PointsPerS)
	}
	if b.Results.Server == nil || b.Results.Server.Process.Count == 0 {
		t.Fatalf("bench artifact lost the server decomposition: %+v", b.Results.Server)
	}

	m := scrape(t, hs.URL)
	if got := m["stream_points_in_total"]; got != float64(res.Points) {
		t.Fatalf("server ingested %v points, driver sent %d", got, res.Points)
	}
}

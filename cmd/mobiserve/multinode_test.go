package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobipriv/internal/load"
	"mobipriv/internal/metrics"
	"mobipriv/internal/router"
	"mobipriv/internal/store"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// The multi-node equivalence wall: a fleet of mobiserve workers behind
// a mobirouter must be indistinguishable — byte for byte — from one
// worker serving everything. The (seed, user) determinism contract
// makes per-user output placement-independent, the shared placement
// contract (rng.Shard) pins each user to one worker, and store.Merge
// joins the per-node sinks; what these tests pin is that the whole
// chain composes: same users, same points, same bytes per trace, same
// evaluation report, whatever the fleet size.

const (
	mnSpec     = "geoi(epsilon=0.01,seed=7)"
	mnUsers    = 30
	mnDays     = 1
	mnSeed     = 5
	mnSampling = 2 * time.Minute
)

// mnWorker is one mobiserve worker with a .mstore sink.
type mnWorker struct {
	srv  *server
	hs   *httptest.Server
	sink string
	stop func()
}

// startSinkWorker builds a worker whose engine runs and whose output
// lands in a fresh .mstore sink; stop() shuts the engine down and
// commits the sink so it can be opened.
func startSinkWorker(t *testing.T, sink string) *mnWorker {
	t.Helper()
	srv, err := newServer(serverConfig{Spec: mnSpec, Shards: 4, Seed: 1, TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.attachStoreSink(sink, true); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.eng.Run(context.Background()) }()
	hs := httptest.NewServer(srv.handler())
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		hs.Close()
		srv.eng.Close()
		if err := <-done; err != nil {
			t.Error(err)
		}
		if err := srv.sinkStore.Close(); err != nil {
			t.Error(err)
		}
	}
	return &mnWorker{srv: srv, hs: hs, sink: sink, stop: stop}
}

// mnRun is one replay's outcome: where the (merged) output store
// lives, and the load driver's scored result.
type mnRun struct {
	merged string
	res    *load.Result
}

// replayFleet starts n workers (n=0 means a single worker with no
// router in front), replays the fixed-seed traffic through the
// router, flushes, shuts the fleet down and merges the per-node sinks
// into one store.
func replayFleet(t *testing.T, dir string, n int) *mnRun {
	t.Helper()
	direct := n == 0
	if direct {
		n = 1
	}
	var workers []*mnWorker
	var urls []string
	defer func() {
		for _, w := range workers {
			w.stop()
		}
	}()
	for i := 0; i < n; i++ {
		w := startSinkWorker(t, filepath.Join(dir, fmt.Sprintf("node%d.mstore", i)))
		workers = append(workers, w)
		urls = append(urls, w.hs.URL)
	}

	target := workers[0].hs.URL
	if !direct {
		rt, err := router.New(router.Config{Nodes: urls, Batch: 128})
		if err != nil {
			t.Fatal(err)
		}
		rhs := httptest.NewServer(rt.Handler())
		defer rhs.Close()
		target = rhs.URL
	}

	res, err := load.Run(context.Background(), load.Config{
		Target:   target,
		Users:    mnUsers,
		Days:     mnDays,
		Sampling: mnSampling,
		Seed:     mnSeed,
		Workers:  4,
		Batch:    128,
		Flush:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("replay had %d errors", res.Errors)
	}
	if res.Accepted != res.Points {
		t.Fatalf("accepted %d of %d points", res.Accepted, res.Points)
	}
	// The router's aggregated /stats must keep the single-node shape:
	// the load driver's server-side decomposition worked, and the
	// fleet-wide points_in covers the whole replay.
	if res.Server == nil {
		t.Fatal("no server-side decomposition — /stats lost the stream_* histograms")
	}
	if res.Server.PointsIn != res.Points {
		t.Fatalf("server decomposition covers %d points, sent %d", res.Server.PointsIn, res.Points)
	}

	// Shut down (commits every sink), then join the fleet's output.
	for _, w := range workers {
		w.stop()
	}
	merged := workers[0].sink
	if len(workers) > 1 {
		var srcs []*store.Store
		for _, w := range workers {
			s, err := store.Open(w.sink)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			srcs = append(srcs, s)
		}
		merged = filepath.Join(dir, "merged.mstore")
		mw, err := store.Create(merged, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := store.Merge(context.Background(), srcs, mw); err != nil {
			t.Fatal(err)
		}
		if err := mw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return &mnRun{merged: merged, res: res}
}

// buildOrigStore writes the replay's input traffic (the same synthetic
// dataset load.Run derives from the seed) into a store, the "orig"
// side of the evaluation.
func buildOrigStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	scfg := synth.DefaultCommuterConfig()
	scfg.Seed = mnSeed
	scfg.Users = mnUsers
	scfg.Days = mnDays
	scfg.Sampling = mnSampling
	gen, err := synth.Commuters(scfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "orig.mstore")
	w, err := store.Create(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range gen.Dataset.Traces() {
		for _, p := range tr.Points {
			if err := w.Append(tr.User, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// traceBytes renders one trace as its canonical NDJSON bytes, the
// strictest equality two traces can have.
func traceBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, p := range tr.Points {
		if err := traceio.WriteJSONLRecord(&buf, tr.User, p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// assertSameDataset asserts got and want hold the same users with
// byte-identical traces.
func assertSameDataset(t *testing.T, label string, got, want *trace.Dataset) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d users, want %d", label, got.Len(), want.Len())
	}
	for _, wtr := range want.Traces() {
		gtr := got.ByUser(wtr.User)
		if gtr == nil {
			t.Fatalf("%s: user %s missing", label, wtr.User)
		}
		if !bytes.Equal(traceBytes(t, gtr), traceBytes(t, wtr)) {
			t.Fatalf("%s: user %s trace bytes differ (%d vs %d points)",
				label, wtr.User, gtr.Len(), wtr.Len())
		}
	}
}

// TestMultiNodeEquivalence is the cross-node equivalence wall: the
// same fixed-seed traffic replayed (a) straight into one worker,
// (b) through a router over one worker and (c) through a router over
// three workers must yield — after merging the per-node sinks — the
// same traffic checksum, byte-identical traces, and a bit-identical
// metrics.EvalStore report against the original dataset at every scan
// worker count. Run it under -race: the replay ingests concurrently
// (4 load workers) while the engine's shards and the router's per-node
// flushes run in parallel.
func TestMultiNodeEquivalence(t *testing.T) {
	orig := buildOrigStore(t, t.TempDir())
	defer orig.Close()

	baseline := replayFleet(t, t.TempDir(), 0)
	fleets := map[string]*mnRun{
		"router-1node":  replayFleet(t, t.TempDir(), 1),
		"router-3nodes": replayFleet(t, t.TempDir(), 3),
	}

	for label, run := range fleets {
		if run.res.TrafficChecksum != baseline.res.TrafficChecksum {
			t.Errorf("%s: traffic checksum %s, baseline %s",
				label, run.res.TrafficChecksum, baseline.res.TrafficChecksum)
		}
	}

	baseStore, err := store.Open(baseline.merged)
	if err != nil {
		t.Fatal(err)
	}
	defer baseStore.Close()
	baseD, err := baseStore.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if baseD.Len() != mnUsers {
		t.Fatalf("baseline store holds %d users, want %d", baseD.Len(), mnUsers)
	}

	// Reference report: single-node output evaluated with one scan
	// worker. Every fleet and every worker count must reproduce it.
	refReport, _, err := metrics.EvalStore(context.Background(), orig, baseStore, metrics.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(refReport)
	if err != nil {
		t.Fatal(err)
	}

	for label, run := range fleets {
		s, err := store.Open(run.merged)
		if err != nil {
			t.Fatal(err)
		}
		d, err := s.Load(context.Background())
		if err != nil {
			s.Close()
			t.Fatal(err)
		}
		assertSameDataset(t, label, d, baseD)

		for _, workers := range []int{1, 4, 16} {
			rep, _, err := metrics.EvalStore(context.Background(), orig, s, metrics.EvalOptions{
				Scan: store.ScanOptions{Workers: workers},
			})
			if err != nil {
				s.Close()
				t.Fatal(err)
			}
			got, err := json.Marshal(rep)
			if err != nil {
				s.Close()
				t.Fatal(err)
			}
			if !bytes.Equal(got, refJSON) {
				t.Errorf("%s at %d eval workers: report differs from single-node reference\ngot  %s\nwant %s",
					label, workers, got, refJSON)
			}
		}
		s.Close()
	}
}

// TestRouterStatsAggregation pins the fleet-wide /stats view after a
// replay: points_in sums to everything sent, the per-node breakdown
// accounts for every forwarded point, and the merged latency
// histograms keep the three stream_* decomposition series with counts
// covering the whole fleet.
func TestRouterStatsAggregation(t *testing.T) {
	dir := t.TempDir()
	var workers []*mnWorker
	var urls []string
	defer func() {
		for _, w := range workers {
			w.stop()
		}
	}()
	for i := 0; i < 3; i++ {
		w := startSinkWorker(t, filepath.Join(dir, fmt.Sprintf("n%d.mstore", i)))
		workers = append(workers, w)
		urls = append(urls, w.hs.URL)
	}
	rt, err := router.New(router.Config{Nodes: urls, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	rhs := httptest.NewServer(rt.Handler())
	defer rhs.Close()

	d := testDataset(t, 9)
	if got := postNDJSON(t, rhs.URL, d); got != d.TotalPoints() {
		t.Fatalf("router accepted %d points, want %d", got, d.TotalPoints())
	}
	postFlush(t, rhs.URL)

	resp, err := http.Get(rhs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Nodes     int    `json:"nodes"`
		In        uint64 `json:"points_in"`
		Forwarded uint64 `json:"router_forwarded_points"`
		PerNode   []struct {
			Node string `json:"node"`
			In   uint64 `json:"points_in"`
		} `json:"per_node"`
		Latency []struct {
			Name   string `json:"name"`
			Labels string `json:"labels"`
			Count  uint64 `json:"count"`
		} `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	total := uint64(d.TotalPoints())
	if stats.Nodes != 3 || stats.In != total || stats.Forwarded != total {
		t.Errorf("stats nodes=%d points_in=%d forwarded=%d, want 3/%d/%d",
			stats.Nodes, stats.In, stats.Forwarded, total, total)
	}
	var perNode uint64
	for _, n := range stats.PerNode {
		perNode += n.In
	}
	if perNode != total {
		t.Errorf("per-node points_in sums to %d, want %d", perNode, total)
	}
	for _, name := range []string{"stream_queue_wait_seconds", "stream_process_seconds", "stream_sink_seconds"} {
		found := false
		for _, h := range stats.Latency {
			if h.Name == name && h.Labels == "" && h.Count > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("aggregated latency lost %s (the decomposition series)", name)
		}
	}
}

// TestRouterTraceparentEndToEnd pins the distributed-trace contract: a
// fixed traceparent injected at the router is echoed on the router's
// response and adopted by the worker, so the worker's flight recorder
// shows the client's trace ID — one trace spanning client -> router ->
// worker.
func TestRouterTraceparentEndToEnd(t *testing.T) {
	w := startSinkWorker(t, filepath.Join(t.TempDir(), "n0.mstore"))
	defer w.stop()
	rt, err := router.New(router.Config{Nodes: []string{w.hs.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rhs := httptest.NewServer(rt.Handler())
	defer rhs.Close()

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const tp = "00-" + traceID + "-00f067aa0ba902b7-01"
	var body bytes.Buffer
	if err := traceio.WriteJSONL(&body, testDataset(t, 2)); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, rhs.URL+"/ingest", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", tp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest via router: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("traceparent"); got != tp {
		t.Errorf("router echoed traceparent %q, want %q", got, tp)
	}

	tresp, err := http.Get(w.hs.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, tresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), traceID) {
		t.Errorf("worker flight recorder does not show forwarded trace %s:\n%.2000s", traceID, sb.String())
	}
}

// Command mobiserve is the online anonymization service: it ingests an
// unbounded stream of location updates over HTTP, pushes them through
// the sharded streaming engine (internal/stream) running any
// streaming-capable mechanism from the mobipriv registry, and republishes
// the anonymized stream — the serving-path counterpart of the batch
// mobianon tool.
//
//	mobiserve -addr :8080 -mechanism "geoi(0.01)" -shards 8
//
// Endpoints:
//
//	POST /ingest   NDJSON {"user":..,"t":..,"lat":..,"lng":..} (or CSV
//	               with Content-Type: text/csv); responds with the
//	               number of accepted points. Backpressure: the request
//	               blocks while shard queues are full.
//	POST /flush    finalize and evict every open trace, forcing out all
//	               withheld points (end of a replay).
//	GET  /out      stream anonymized output as NDJSON until the client
//	               disconnects (points anonymized after connect).
//	GET  /stats    JSON: per-shard queue depth and user counts,
//	               points/sec, evictions, risk-monitor counts. The
//	               values are a view over the same metrics registry
//	               /metrics serves, so the two cannot disagree.
//	GET  /metrics  Prometheus text exposition of every counter, gauge
//	               and latency histogram (engine, sinks, risk monitor,
//	               per-route HTTP latency).
//	GET  /risk     JSON: per-user privacy-risk state from the live
//	               monitor (internal/risk) watching the anonymized
//	               output — users whose published points still show a
//	               POI recurring across distinct days are flagged.
//	               ?user=U returns one user (404 when unobserved).
//	POST /risk/reset  drop monitor state (?user=U for one user).
//	GET  /debug/traces  flight recorder (JSON; ?format=text for the
//	               human zpage): recent sampled request traces with
//	               queue-wait/process/sink decomposition, the slowest
//	               trace per latency bucket, per-span-kind summaries.
//	               Sampling is governed by -trace-sample (deterministic
//	               per trace ID); -trace-slow logs slow roots.
//
// With -pprof the standard net/http/pprof debug endpoints are mounted
// under /debug/pprof/ (opt-in: profiling handlers on a public address
// are a foot-gun, so they are off by default).
//
// Quickstart against a generated dataset:
//
//	mobigen -out day.jsonl -format jsonl
//	mobiserve -addr :8080 -mechanism "promesse(epsilon=100)" -sink anon.jsonl &
//	curl -s -XPOST --data-binary @day.jsonl localhost:8080/ingest
//	curl -s -XPOST localhost:8080/flush
//	curl -s localhost:8080/stats
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mobipriv"
	"mobipriv/internal/cliutil"
	"mobipriv/internal/obs"
	otrace "mobipriv/internal/obs/trace"
	"mobipriv/internal/risk"
	"mobipriv/internal/store"
	"mobipriv/internal/stream"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobiserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobiserve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		mech      = fs.String("mechanism", "promesse", "streaming-capable mechanism spec (see -list-streaming)")
		shards    = fs.Int("shards", 8, "per-user state partitions (one goroutine each)")
		queue     = fs.Int("queue", 64, "per-shard queue depth in batches (backpressure bound)")
		batch     = fs.Int("batch", 256, "ingest batch size in points")
		ttl       = fs.Duration("ttl", 10*time.Minute, "evict users idle longer than this (0 disables)")
		sink      = fs.String("sink", "", "append anonymized output to this NDJSON file, or to a native store when the path ends in .mstore (an existing store is extended across restarts)")
		sinkFresh = fs.Bool("sink-fresh", false, "refuse to extend an existing .mstore sink: the path must not already hold a store")
		pseudonym = fs.String("pseudonym", "", "relabel output users with this pseudonym prefix")
		seed      = fs.Int64("seed", 1, "pseudonym seed")
		riskDays  = fs.Int("risk-min-days", 2, "flag users whose output shows a POI recurring on this many distinct days (0 disables the monitor)")
		pprofOn   = fs.Bool("pprof", false, "mount net/http/pprof debug endpoints under /debug/pprof/")
		list      = fs.Bool("list-streaming", false, "list streaming-capable mechanisms and exit")
		trSample  = fs.Float64("trace-sample", 1, "fraction of requests traced, deterministic per trace ID (0 disables span recording)")
		trSlow    = fs.Duration("trace-slow", 0, "log sampled root spans slower than this (0 disables)")
		verbose   = cliutil.Verbose(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(mobipriv.StreamingMechanisms(), "\n"))
		return nil
	}

	srv, err := newServer(serverConfig{
		Spec:        *mech,
		Shards:      *shards,
		Queue:       *queue,
		Batch:       *batch,
		TTL:         *ttl,
		Pseudonym:   *pseudonym,
		Seed:        *seed,
		RiskMinDays: *riskDays,
		Pprof:       *pprofOn,
		TraceSample: *trSample,
		TraceSlow:   *trSlow,
	})
	if err != nil {
		return err
	}
	if *sink != "" {
		if strings.HasSuffix(*sink, ".mstore") {
			if err := srv.attachStoreSink(*sink, *sinkFresh); err != nil {
				return err
			}
		} else {
			f, err := os.OpenFile(*sink, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("open sink: %w", err)
			}
			defer f.Close()
			srv.sinkFile = f
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if srv.sinkStore != nil {
		go func() {
			t := time.NewTicker(time.Minute)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					srv.flushStoreSinkTraced()
				}
			}
		}()
	}
	// The engine runs on a background context and stops only through
	// Close: stopping it with the signal context would kill the shard
	// goroutines before they flush, dropping every withheld sample.
	engDone := make(chan error, 1)
	go func() { engDone <- srv.eng.Run(context.Background()) }()
	shutdownEngine := func() error {
		srv.eng.Close()
		err := <-engDone
		// Finalize the store sink after the shards have flushed: Close
		// writes the footers and manifest that make the store readable.
		if srv.sinkStore != nil {
			if cerr := srv.sinkStore.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}

	hs := &http.Server{Addr: *addr, Handler: srv.handler()}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	}()
	// One-line startup summary: every enabled endpoint, so an operator
	// can see at a glance what this instance exposes (and what it
	// doesn't — no silent -sink or -pprof surprises).
	endpoints := []string{"POST /ingest", "POST /flush", "GET /out", "GET /stats", "GET /metrics", "GET /healthz", "GET /debug/traces"}
	if srv.mon != nil {
		endpoints = append(endpoints, "GET /risk", "POST /risk/reset")
	}
	if *pprofOn {
		endpoints = append(endpoints, "GET /debug/pprof/")
	}
	sinkDesc := "none"
	switch {
	case srv.sinkStore != nil:
		sinkDesc = "store " + *sink
	case srv.sinkFile != nil:
		sinkDesc = "file " + *sink
	}
	log.Printf("mobiserve: %s on %s (%d shards, sink %s) endpoints: %s",
		srv.mechName, *addr, *shards, sinkDesc, strings.Join(endpoints, " "))
	serveErr := hs.ListenAndServe()
	if errors.Is(serveErr, http.ErrServerClosed) {
		serveErr = nil
	}
	err = shutdownEngine()
	if *verbose {
		st := srv.eng.Stats()
		fmt.Fprintf(os.Stderr, "mobiserve: served %d points in, %d out, %d evicted users, %d backpressure stalls, %d sink failures\n",
			st.In, st.Out, st.Evicted, st.Stalls, srv.sinkFails.Load())
	}
	if serveErr != nil {
		return serveErr
	}
	return err
}

type serverConfig struct {
	Spec      string
	Shards    int
	Queue     int
	Batch     int
	TTL       time.Duration
	Pseudonym string
	Seed      int64
	// RiskMinDays configures the live risk monitor's recurrence
	// threshold; 0 disables monitoring entirely.
	RiskMinDays int
	// Pprof mounts the net/http/pprof debug endpoints.
	Pprof bool
	// TraceSample is the fraction of requests recorded as spans,
	// deterministic per trace ID (so replaying identical traffic with a
	// fixed seed samples identical requests). 0 disables recording;
	// /debug/traces stays mounted but empty.
	TraceSample float64
	// TraceSlow, when positive, logs every sampled root span at least
	// this slow.
	TraceSlow time.Duration
}

// server owns the engine and fans its output to the sink file and the
// live /out subscribers.
type server struct {
	eng      *stream.Engine
	reg      *obs.Registry
	tracer   *otrace.Tracer // nil-safe: zero sample rate still mounts /debug/traces
	mechName string
	batch    int
	started  time.Time
	mon      *risk.Monitor // nil when monitoring is disabled
	pprofOn  bool

	mu        sync.Mutex
	sinkFile  io.Writer
	sinkStore *store.Writer
	subs      map[int]chan []stream.Update
	nextSub   int
	dropped   atomic.Uint64
	sinkFails atomic.Uint64
}

// newServer resolves the mechanism spec to its streaming adapter and
// builds the engine around it (not yet running).
func newServer(cfg serverConfig) (*server, error) {
	m, err := mobipriv.FromSpec(cfg.Spec)
	if err != nil {
		return nil, err
	}
	factory, ok := mobipriv.AsStreaming(m)
	if !ok {
		return nil, fmt.Errorf("mechanism %q cannot run online (streaming-capable: %s)",
			m.Name(), strings.Join(mobipriv.StreamingMechanisms(), ", "))
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	srv := &server{
		reg:      obs.NewRegistry(),
		mechName: m.Name(),
		batch:    cfg.Batch,
		started:  time.Now(),
		pprofOn:  cfg.Pprof,
		subs:     make(map[int]chan []stream.Update),
	}
	// The tracer exists whenever a sample rate is set; rate 0 leaves
	// srv.tracer nil, and every span call site is nil-safe, so an
	// untraced server pays nothing.
	if cfg.TraceSample > 0 {
		srv.tracer = otrace.New(otrace.Config{
			SampleRate:    cfg.TraceSample,
			Seed:          uint64(cfg.Seed),
			SlowThreshold: cfg.TraceSlow,
			SlowFunc: func(rs *otrace.RootSpan) {
				log.Printf("mobiserve: slow trace %s %s: %s (%d spans)",
					rs.Name, rs.Trace, rs.Root.Duration, len(rs.Spans))
			},
		})
	}
	if cfg.RiskMinDays > 0 {
		mcfg := risk.DefaultMonitorConfig()
		mcfg.MinDays = cfg.RiskMinDays
		if srv.mon, err = risk.NewMonitor(mcfg); err != nil {
			return nil, err
		}
		srv.mon.SetTracer(srv.tracer)
	}
	pseudo := stream.Pseudonymize{Prefix: cfg.Pseudonym, Seed: cfg.Seed}
	eng, err := stream.NewEngine(stream.Config{
		Shards:     cfg.Shards,
		QueueDepth: cfg.Queue,
		IdleTTL:    cfg.TTL,
		Sink:       srv.sink,
	}, func(user string) stream.Mechanism {
		mech := stream.Mechanism(factory(user))
		if cfg.Pseudonym != "" {
			mech = stream.Chain(mech, pseudo.New(user))
		}
		if srv.mon != nil {
			// The tap wraps the WHOLE chain: the monitor sees exactly
			// the points the service publishes, keyed by input user so
			// the risk verdict names an accountable identity.
			mech = riskTap{inner: mech, mon: srv.mon, user: user}
		}
		return mech
	})
	if err != nil {
		return nil, err
	}
	srv.eng = eng
	srv.registerMetrics()
	return srv, nil
}

// registerMetrics publishes every subsystem on the server's registry.
// All series are scrape-time views over the counters the subsystems
// already maintain, so /stats (which reads the registry too) and
// /metrics are the same numbers by construction.
func (s *server) registerMetrics() {
	s.eng.RegisterMetrics(s.reg)
	if s.mon != nil {
		s.mon.RegisterMetrics(s.reg)
	}
	obs.RegisterProcessMetrics(s.reg)
	if s.tracer != nil {
		s.reg.CounterFunc("trace_published_roots_total",
			"Root spans published to the flight recorder.",
			func() float64 { return float64(s.tracer.Published()) })
	}
	s.reg.GaugeFunc("mobiserve_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })
	s.reg.CounterFunc("mobiserve_sink_write_failures_total",
		"Failed sink writes (file batches or store appends/flushes).",
		func() float64 { return float64(s.sinkFails.Load()) })
	s.reg.CounterFunc("mobiserve_dropped_subscriber_points_total",
		"Points dropped because an /out subscriber was too slow.",
		func() float64 { return float64(s.dropped.Load()) })
	// Store-sink write totals: zero until a .mstore sink is attached.
	sinkStat := func(pick func(store.WriterStats) int64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			sw := s.sinkStore
			s.mu.Unlock()
			if sw == nil {
				return 0
			}
			return float64(pick(sw.Stats()))
		}
	}
	s.reg.CounterFunc("mobiserve_sink_store_blocks_total",
		"Blocks written by the .mstore sink.",
		sinkStat(func(st store.WriterStats) int64 { return st.Blocks }))
	s.reg.CounterFunc("mobiserve_sink_store_bytes_total",
		"Encoded bytes written by the .mstore sink.",
		sinkStat(func(st store.WriterStats) int64 { return st.Bytes }))
	s.reg.CounterFunc("mobiserve_sink_store_points_total",
		"Points written by the .mstore sink.",
		sinkStat(func(st store.WriterStats) int64 { return st.Points }))
	// Recovery view: what OpenAppend found (and cleaned up) when the
	// sink was attached. Zero until a .mstore sink is attached.
	recStat := func(pick func(store.RecoveryStats) int64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			sw := s.sinkStore
			s.mu.Unlock()
			if sw == nil {
				return 0
			}
			return float64(pick(sw.Recovery()))
		}
	}
	s.reg.CounterFunc("store_recovery_runs",
		"Recovery passes run when the .mstore sink was opened.",
		recStat(func(r store.RecoveryStats) int64 { return r.Runs }))
	s.reg.CounterFunc("store_truncated_tails",
		"Uncommitted segment files removed and torn tails truncated by sink recovery.",
		recStat(func(r store.RecoveryStats) int64 { return r.TruncatedTails }))
	s.reg.GaugeFunc("store_generations",
		"Committed generations the .mstore sink extends (this session's data becomes one more at shutdown).",
		recStat(func(r store.RecoveryStats) int64 { return r.Generation }))
}

// attachStoreSink opens path as the server's .mstore sink. By default
// the store is opened for append — an existing store left by a
// previous run (even one that crashed) is recovered and extended with
// a new generation. With fresh set, the path must not already hold a
// store: Create refuses it, surfacing accidental reuse instead of
// silently growing the wrong dataset.
func (s *server) attachStoreSink(path string, fresh bool) error {
	if fresh {
		sw, err := store.Create(path, store.Options{})
		if err != nil {
			return fmt.Errorf("create store sink: %w", err)
		}
		s.sinkStore = sw
		return nil
	}
	sw, err := store.OpenAppend(path, store.Options{})
	if err != nil {
		return fmt.Errorf("open store sink: %w", err)
	}
	if rec := sw.Recovery(); rec.Generation > 0 || rec.TruncatedTails > 0 {
		log.Printf("mobiserve: store sink %s: extending %d committed generation(s), recovery cleaned %d uncommitted file(s)",
			path, rec.Generation, rec.TruncatedTails)
	}
	s.sinkStore = sw
	return nil
}

// sink receives anonymized batches from the shard goroutines. The
// engine reuses the batch after the call, so subscribers get a copy.
func (s *server) sink(batch []stream.Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sinkStore != nil {
		for _, u := range batch {
			if err := s.sinkStore.Append(u.User, u.Point); err != nil {
				if s.sinkFails.Add(1) == 1 {
					log.Printf("mobiserve: store sink append failed (counting further failures in /stats): %v", err)
				}
			}
		}
	}
	if s.sinkFile != nil {
		var buf bytes.Buffer
		for _, u := range batch {
			traceio.WriteJSONLRecord(&buf, u.User, u.Point)
		}
		if _, err := s.sinkFile.Write(buf.Bytes()); err != nil {
			// Count every failed batch, log only the first: a full disk
			// must surface in /stats without flooding the log.
			if s.sinkFails.Add(1) == 1 {
				log.Printf("mobiserve: sink write failed (counting further failures in /stats): %v", err)
			}
		}
	}
	if len(s.subs) == 0 {
		return
	}
	cp := make([]stream.Update, len(batch))
	copy(cp, batch)
	for _, ch := range s.subs {
		select {
		case ch <- cp:
		default:
			s.dropped.Add(uint64(len(cp))) // slow reader: drop, never stall shards
		}
	}
}

func (s *server) subscribe() (int, <-chan []stream.Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextSub
	s.nextSub++
	ch := make(chan []stream.Update, 256)
	s.subs[id] = ch
	return id, ch
}

func (s *server) unsubscribe(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, id)
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.instrument("/ingest", s.handleIngest))
	mux.HandleFunc("POST /flush", s.instrument("/flush", s.handleFlush))
	mux.HandleFunc("GET /out", s.handleOut) // long-lived stream: latency is meaningless
	mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("GET /risk", s.instrument("/risk", s.handleRisk))
	mux.HandleFunc("POST /risk/reset", s.instrument("/risk/reset", s.handleRiskReset))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	// Deliberately uninstrumented: reading the flight recorder should
	// not itself mint spans that displace the traces being read.
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if s.pprofOn {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// instrument wraps a handler with a per-route request counter, a
// latency histogram, and — when the request's trace is sampled — a root
// span covering the whole request. An incoming W3C traceparent header
// keys the sampling decision and parents the span; the span's own
// identity is echoed back in the response traceparent so the client can
// join its measurements to the server's flight recorder.
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter("mobiserve_http_requests_total",
		"HTTP requests served, by route.", obs.L("route", route))
	lat := s.reg.Histogram("mobiserve_http_request_seconds",
		"HTTP request latency, by route.", obs.L("route", route))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var sp *otrace.Span
		if s.tracer != nil {
			id, parent, _, _ := otrace.ParseTraceparent(r.Header.Get("traceparent"))
			if sp = s.tracer.RootAt(route, id, parent, start); sp != nil {
				w.Header().Set("traceparent",
					otrace.FormatTraceparent(sp.TraceID(), sp.SpanID(), true))
				r = r.WithContext(otrace.NewContext(r.Context(), sp))
			}
		}
		h(w, r)
		reqs.Inc()
		lat.ObserveDuration(time.Since(start))
		sp.End()
	}
}

// handleTraces serves the flight recorder: recent root spans, the
// slowest exemplar per latency bucket, and per-span-kind summaries.
// JSON by default; ?format=text renders the human zpage.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	snap := s.tracer.Snapshot(32)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	snap.WriteJSON(w)
}

// handleMetrics serves the Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleIngest decodes the request body record-at-a-time (never holding
// more than one batch in memory) and pushes batches into the engine,
// blocking on shard backpressure.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	sp := otrace.FromContext(ctx)
	accepted := 0
	updates := make([]stream.Update, 0, s.batch)
	push := func() error {
		if len(updates) == 0 {
			return nil
		}
		if err := s.eng.PushTraced(ctx, sp, updates...); err != nil {
			return err
		}
		accepted += len(updates)
		updates = updates[:0]
		return nil
	}
	record := func(user string, p trace.Point) error {
		updates = append(updates, stream.Update{User: user, Point: p})
		if len(updates) >= s.batch {
			return push()
		}
		return nil
	}
	var err error
	if strings.HasPrefix(r.Header.Get("Content-Type"), "text/csv") {
		err = traceio.DecodeCSV(r.Body, record)
	} else {
		err = traceio.DecodeJSONL(r.Body, record)
	}
	if err == nil {
		err = push()
	}
	if err != nil {
		httpError(w, err)
		return
	}
	if sp != nil {
		sp.SetAttr(otrace.Int("accepted", int64(accepted)))
	}
	writeJSON(w, map[string]any{"accepted": accepted})
}

func (s *server) handleFlush(w http.ResponseWriter, r *http.Request) {
	sp := otrace.FromContext(r.Context())
	c := sp.Child("engine.flush")
	err := s.eng.Flush(r.Context())
	c.End()
	if err != nil {
		httpError(w, err)
		return
	}
	c = sp.Child("sink.flush")
	s.flushStoreSink()
	c.End()
	writeJSON(w, map[string]any{"flushed": true})
}

// flushStoreSink drains the store writer's per-user buffers to disk so
// a long-running service's sink memory stays bounded; called after an
// engine flush and periodically from run. The resulting fragmentation
// is mobistore compact's job.
func (s *server) flushStoreSink() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sinkStore == nil {
		return
	}
	if err := s.sinkStore.Flush(); err != nil {
		if s.sinkFails.Add(1) == 1 {
			log.Printf("mobiserve: store sink flush failed (counting further failures in /stats): %v", err)
		}
	}
}

// flushStoreSinkTraced is the periodic-flush variant: it runs the
// flush under its own sampled root span recording how many blocks and
// bytes the flush pushed out, so background sink work shows up in
// /debug/traces alongside request traces.
func (s *server) flushStoreSinkTraced() {
	sp := s.tracer.Root("sink.flush_periodic", otrace.TraceID{}, 0)
	if sp == nil {
		s.flushStoreSink()
		return
	}
	before := s.sinkStoreStats()
	s.flushStoreSink()
	after := s.sinkStoreStats()
	sp.SetAttr(
		otrace.Int("blocks", after.Blocks-before.Blocks),
		otrace.Int("bytes", after.Bytes-before.Bytes))
	sp.End()
}

// sinkStoreStats snapshots the store sink's writer counters (zero
// when no store sink is attached).
func (s *server) sinkStoreStats() store.WriterStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sinkStore == nil {
		return store.WriterStats{}
	}
	return s.sinkStore.Stats()
}

// handleOut streams anonymized output as NDJSON from the moment of
// connection until the client goes away.
func (s *server) handleOut(w http.ResponseWriter, r *http.Request) {
	fl, _ := w.(http.Flusher)
	id, ch := s.subscribe()
	defer s.unsubscribe(id)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if fl != nil {
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case batch := <-ch:
			var buf bytes.Buffer
			for _, u := range batch {
				traceio.WriteJSONLRecord(&buf, u.User, u.Point)
			}
			if _, err := w.Write(buf.Bytes()); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	}
}

// riskTap wraps a user's whole mechanism chain and mirrors its
// published output into the risk monitor. Flush forwards the trailing
// points first, then closes the monitor's open stay — evidence
// (clusters, day counts) survives engine flushes and evictions by
// design: recurrence across days is exactly what the monitor is for.
type riskTap struct {
	inner stream.Mechanism
	mon   *risk.Monitor
	user  string
}

func (t riskTap) Push(p trace.Point) []trace.Point {
	out := t.inner.Push(p)
	t.mon.Observe(t.user, out...)
	return out
}

func (t riskTap) Flush() []trace.Point {
	out := t.inner.Flush()
	t.mon.Observe(t.user, out...)
	t.mon.EndTrace(t.user)
	return out
}

// OutUser forwards the inner chain's relabeling so the tap stays
// invisible to the engine.
func (t riskTap) OutUser(in string) string {
	if r, ok := t.inner.(stream.Relabeler); ok {
		return r.OutUser(in)
	}
	return in
}

// riskResponse is the /risk wire format.
type riskResponse struct {
	MinDays int             `json:"min_days"`
	Users   int             `json:"users"`
	Flagged int             `json:"flagged"`
	Risks   []risk.UserRisk `json:"risks"`
}

func (s *server) handleRisk(w http.ResponseWriter, r *http.Request) {
	if s.mon == nil {
		http.Error(w, "risk monitoring disabled (-risk-min-days 0)", http.StatusNotFound)
		return
	}
	if user := r.URL.Query().Get("user"); user != "" {
		ur, ok := s.mon.User(user)
		if !ok {
			http.Error(w, "user not observed", http.StatusNotFound)
			return
		}
		writeJSON(w, ur)
		return
	}
	risks := s.mon.Snapshot()
	resp := riskResponse{MinDays: s.mon.Config().MinDays, Users: len(risks), Risks: risks}
	for _, ur := range risks {
		if ur.Flagged {
			resp.Flagged++
		}
	}
	writeJSON(w, resp)
}

func (s *server) handleRiskReset(w http.ResponseWriter, r *http.Request) {
	if s.mon == nil {
		http.Error(w, "risk monitoring disabled (-risk-min-days 0)", http.StatusNotFound)
		return
	}
	if user := r.URL.Query().Get("user"); user != "" {
		writeJSON(w, map[string]any{"reset": s.mon.Reset(user)})
		return
	}
	s.mon.ResetAll()
	writeJSON(w, map[string]any{"reset": true})
}

// statsResponse is the /stats wire format.
type statsResponse struct {
	Mechanism   string  `json:"mechanism"`
	UptimeS     float64 `json:"uptime_s"`
	In          uint64  `json:"points_in"`
	Out         uint64  `json:"points_out"`
	PointsPerS  float64 `json:"points_per_s"`
	Evicted     uint64  `json:"evicted_users"`
	Stalls      uint64  `json:"push_stalls"`
	ActiveUsers int     `json:"active_users"`
	DroppedSub  uint64  `json:"dropped_subscriber_points"`
	SinkFails   uint64  `json:"sink_write_failures"`
	// Store-sink view: points this session wrote, plus what recovery
	// found at open. Zero without a .mstore sink.
	SinkPoints  uint64              `json:"sink_store_points"`
	SinkGens    uint64              `json:"sink_store_generations"`
	SinkRecov   uint64              `json:"sink_recovery_runs"`
	RiskUsers   int                 `json:"risk_users"`
	RiskFlagged int                 `json:"risk_flagged"`
	Goroutines  int                 `json:"goroutines"`
	HeapInuse   uint64              `json:"heap_inuse_bytes"`
	GCRuns      uint64              `json:"gc_runs"`
	Shards      []stream.ShardStats `json:"shards"`
	// Latency is the quantile summary of every histogram series the
	// registry holds (HTTP routes, engine queue-wait/process/sink) —
	// the same numbers /metrics exposes as bucket counts.
	Latency []obs.HistogramSnapshot `json:"latency"`
}

// handleStats renders the JSON stats view. Every scalar is read back
// from the metrics registry — the same series /metrics scrapes — so
// the two endpoints cannot drift apart. Only the per-shard breakdown
// and the mechanism name come from outside the registry.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	regVal := func(name string) float64 {
		v, _ := s.reg.Value(name)
		return v
	}
	up := regVal("mobiserve_uptime_seconds")
	resp := statsResponse{
		Mechanism:   s.mechName,
		UptimeS:     up,
		In:          uint64(regVal("stream_points_in_total")),
		Out:         uint64(regVal("stream_points_out_total")),
		Evicted:     uint64(regVal("stream_evicted_users_total")),
		Stalls:      uint64(regVal("stream_push_stalls_total")),
		ActiveUsers: int(regVal("stream_active_users")),
		DroppedSub:  uint64(regVal("mobiserve_dropped_subscriber_points_total")),
		SinkFails:   uint64(regVal("mobiserve_sink_write_failures_total")),
		SinkPoints:  uint64(regVal("mobiserve_sink_store_points_total")),
		SinkGens:    uint64(regVal("store_generations")),
		SinkRecov:   uint64(regVal("store_recovery_runs")),
		RiskUsers:   int(regVal("risk_users")),
		RiskFlagged: int(regVal("risk_flagged_users")),
		Goroutines:  int(regVal("process_goroutines")),
		HeapInuse:   uint64(regVal("process_heap_inuse_bytes")),
		GCRuns:      uint64(regVal("process_gc_runs_total")),
		Shards:      s.eng.Stats().Shards,
		Latency:     s.reg.HistogramSnapshots(),
	}
	if up > 0 {
		resp.PointsPerS = float64(resp.In) / up
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, stream.ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = http.StatusRequestTimeout
	}
	http.Error(w, err.Error(), code)
}

// Command mobieval compares an anonymized dataset against its original
// and prints the utility metrics of the evaluation (spatial distortion,
// coverage, trip lengths, OD flows, popular cells, range queries) and,
// when ground-truth stays are supplied, the POI-retrieval attack scores.
//
// The anonymized dataset is either read from a file (-anon) or produced
// on the fly by a mechanism from the mobipriv registry (-mechanism).
//
// Usage:
//
//	mobieval -orig raw.csv -anon anon.csv
//	mobieval -orig raw.csv -anon anon.csv -stays stays.csv
//	mobieval -orig raw.csv -mechanism "promesse(epsilon=200)"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"mobipriv"
	"mobipriv/internal/attack/poiattack"
	"mobipriv/internal/metrics"
	"mobipriv/internal/stats"
	"mobipriv/internal/store"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobieval:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobieval", flag.ContinueOnError)
	var (
		origPath  = fs.String("orig", "", "original dataset (.csv/.jsonl/.plt[.gz] or .mstore); required")
		anonPath  = fs.String("anon", "", "anonymized dataset (.csv/.jsonl/.plt[.gz] or .mstore)")
		mechSpec  = fs.String("mechanism", "", "anonymize -orig on the fly with this registry spec instead of reading -anon")
		workers   = fs.Int("workers", runtime.NumCPU(), "worker pool size for on-the-fly anonymization")
		staysPath = fs.String("stays", "", "ground-truth stays CSV from mobigen (enables the POI attack)")
		cell      = fs.Float64("cell", 500, "grid cell size in meters for coverage/OD/popularity")
		queries   = fs.Int("queries", 100, "number of random range queries")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *origPath == "" {
		return errors.New("-orig is required")
	}
	if (*anonPath == "") == (*mechSpec == "") {
		return errors.New("exactly one of -anon or -mechanism is required")
	}
	orig, err := store.ReadDataset(context.Background(), *origPath)
	if err != nil {
		return fmt.Errorf("original: %w", err)
	}
	var anon *trace.Dataset
	if *mechSpec != "" {
		m, err := mobipriv.FromSpec(*mechSpec)
		if err != nil {
			return err
		}
		res, err := mobipriv.NewRunner(mobipriv.WithWorkers(*workers)).Run(context.Background(), m, orig)
		if err != nil {
			return fmt.Errorf("%s: %w", m.Name(), err)
		}
		anon = res.Dataset
		fmt.Fprintf(stdout, "anonymized on the fly with %s (%d users dropped)\n", m.Name(), len(res.DroppedUsers()))
	} else {
		anon, err = store.ReadDataset(context.Background(), *anonPath)
		if err != nil {
			return fmt.Errorf("anonymized: %w", err)
		}
	}

	fmt.Fprintf(stdout, "original:   %s\n", orig)
	fmt.Fprintf(stdout, "anonymized: %s\n\n", anon)

	// Geometry metrics that need matched identifiers degrade gracefully.
	if dist, err := metrics.DatasetDistortion(orig, anon); err == nil {
		fmt.Fprintf(stdout, "spatial distortion (pub->orig): %s\n", stats.Summarize(dist))
	} else {
		fmt.Fprintf(stdout, "spatial distortion: skipped (%v)\n", err)
	}
	if comp, err := metrics.DatasetCompleteness(orig, anon); err == nil {
		fmt.Fprintf(stdout, "completeness (orig->pub):       %s\n", stats.Summarize(comp))
	}

	cov, err := metrics.Coverage(orig, anon, *cell)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "coverage @%.0fm: P=%.3f R=%.3f F1=%.3f (%d->%d cells)\n",
		*cell, cov.Precision, cov.Recall, cov.F1, cov.OrigCells, cov.AnonCells)

	lens, err := metrics.TripLengths(orig, anon)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trip lengths: mean %.0f -> %.0f m (rel err %.3f), decile err %.3f\n",
		lens.OrigMean, lens.AnonMean, lens.MeanRelError, lens.DecileError)

	od, err := metrics.ODFlows(orig, anon, *cell)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "OD flows @%.0fm: accuracy %.3f (%d -> %d distinct pairs)\n",
		*cell, od.Accuracy, od.OrigOD, od.AnonOD)

	if tau, err := metrics.PopularCellsTau(orig, anon, *cell, 20); err == nil {
		fmt.Fprintf(stdout, "popular cells (top 20): kendall tau %.3f\n", tau)
	}

	rq, err := metrics.RangeQueryError(orig, anon, *queries, *cell, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "range queries (%d @%.0fm): mean rel err %.3f, p95 %.3f\n",
		*queries, *cell, stats.Mean(rq), stats.Quantile(rq, 0.95))

	if *staysPath != "" {
		stays, err := readStays(*staysPath)
		if err != nil {
			return err
		}
		atk, err := poiattack.Evaluate(anon, stays, poiattack.DefaultConfig())
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nPOI retrieval attack:\n  per-user: %s\n  global:   %s\n",
			atk.PerUser, atk.Global)
	}
	return nil
}

// readStays parses the stays CSV written by mobigen.
func readStays(path string) ([]synth.Stay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open stays: %w", err)
	}
	defer f.Close()
	return synth.ReadStays(f)
}

// Command mobieval compares an anonymized dataset against its original
// and prints the utility metrics of the evaluation (spatial distortion,
// coverage, trip lengths, OD flows, popular cells, range queries) and,
// when ground-truth stays are supplied, the POI-retrieval attack scores.
//
// The anonymized dataset is either read from a file (-anon) or produced
// on the fly by a mechanism from the mobipriv registry (-mechanism).
//
// When both inputs are .mstore stores, the evaluation is store-native:
// the two stores are streamed in lockstep (store.ScanTracesPaired) and
// folded through mergeable metric accumulators (metrics.EvalStore), so
// neither dataset is ever resident — memory stays flat however large
// the stores. The POI attack streams the same way (-stays works on both
// paths): published traces run one at a time through the incremental
// stay detector of internal/risk, so only per-user POI centers are
// retained. The -bbox/-from/-to/-users filters restrict either path
// to a slice of the data; on stores they prune whole blocks on footer
// stats without reading them.
//
// Usage:
//
//	mobieval -orig raw.csv -anon anon.csv
//	mobieval -orig raw.csv -anon anon.csv -stays stays.csv
//	mobieval -orig raw.csv -mechanism "promesse(epsilon=200)"
//	mobieval -orig raw.mstore -anon anon.mstore
//	mobieval -orig raw.mstore -anon anon.mstore -from 2025-06-01T00:00:00Z -bbox 45.7,4.8,45.8,4.9
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"mobipriv"
	"mobipriv/internal/cliutil"
	"mobipriv/internal/metrics"
	"mobipriv/internal/risk"
	"mobipriv/internal/store"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobieval:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobieval", flag.ContinueOnError)
	var (
		origPath  = fs.String("orig", "", "original dataset (.csv/.jsonl/.plt[.gz] or .mstore); required")
		anonPath  = fs.String("anon", "", "anonymized dataset (.csv/.jsonl/.plt[.gz] or .mstore)")
		mechSpec  = fs.String("mechanism", "", "anonymize -orig on the fly with this registry spec instead of reading -anon")
		workers   = fs.Int("workers", runtime.NumCPU(), "worker pool size for scanning and on-the-fly anonymization")
		staysPath = fs.String("stays", "", "ground-truth stays CSV from mobigen (enables the POI attack)")
		cell      = fs.Float64("cell", 500, "grid cell size in meters for coverage/OD/popularity")
		queries   = fs.Int("queries", 100, "number of random range queries")
		seed      = fs.Int64("seed", 1, "seed deriving the range-query centers")
		bbox      = fs.String("bbox", "", "evaluate only points inside minLat,minLng,maxLat,maxLng")
		from      = fs.String("from", "", "evaluate only points at or after this time (RFC 3339 or Unix seconds)")
		to        = fs.String("to", "", "evaluate only points at or before this time (RFC 3339 or Unix seconds)")
		users     = fs.String("users", "", "evaluate only these comma-separated users")
		verbose   = cliutil.Verbose(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *origPath == "" {
		return errors.New("-orig is required")
	}
	if (*anonPath == "") == (*mechSpec == "") {
		return errors.New("exactly one of -anon or -mechanism is required")
	}
	// Validate explicitly: the zero values of EvalOptions mean "use the
	// defaults", so a mistyped -cell 0 or -queries 0 must not silently
	// become 500/100.
	if *cell <= 0 {
		return fmt.Errorf("-cell %v must be positive", *cell)
	}
	if *queries <= 0 {
		return fmt.Errorf("-queries %d must be positive", *queries)
	}
	filters, err := cliutil.ScanFilters(*bbox, *from, *to, *users)
	if err != nil {
		return err
	}
	opts := metrics.EvalOptions{CellSize: *cell, Queries: *queries, Seed: *seed}
	if *staysPath != "" {
		stays, err := readStays(*staysPath)
		if err != nil {
			return err
		}
		cfg := risk.DefaultAttackConfig()
		opts.Attack = &metrics.AttackOptions{
			Truth:  risk.TruthPOIs(stays, cfg.MatchRadius),
			Config: cfg,
		}
	}

	// Two native stores and no on-the-fly mechanism: evaluate
	// store-natively, streaming both stores in lockstep without ever
	// materializing a dataset.
	if strings.HasSuffix(*origPath, ".mstore") && strings.HasSuffix(*anonPath, ".mstore") && *mechSpec == "" {
		return runStoreNative(*origPath, *anonPath, opts, filters, *workers, stdout, *verbose)
	}

	orig, err := store.ReadDataset(context.Background(), *origPath)
	if err != nil {
		return fmt.Errorf("original: %w", err)
	}
	// Anchor the evaluation grid and query box at the full original
	// bounds before filtering — the store-native path anchors at the
	// manifest bounds, so a filtered batch run and a filtered
	// store-native run of the same data stay comparable cell for cell.
	opts.Bounds = orig.Bounds()
	if orig, err = cliutil.FilterDataset(orig, filters); err != nil {
		return err
	}
	var anon *trace.Dataset
	if *mechSpec != "" {
		m, err := mobipriv.FromSpec(*mechSpec)
		if err != nil {
			return err
		}
		res, err := mobipriv.NewRunner(mobipriv.WithWorkers(*workers)).Run(context.Background(), m, orig)
		if err != nil {
			return fmt.Errorf("%s: %w", m.Name(), err)
		}
		// Filter the published side too — a mechanism may push points
		// outside the window or bbox (noise, time distortion), and the
		// -anon path would filter those when reading its file.
		anon, err = cliutil.FilterDataset(res.Dataset, filters)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "anonymized on the fly with %s (%d users dropped)\n", m.Name(), len(res.DroppedUsers()))
	} else {
		anon, err = store.ReadDataset(context.Background(), *anonPath)
		if err != nil {
			return fmt.Errorf("anonymized: %w", err)
		}
		if anon, err = cliutil.FilterDataset(anon, filters); err != nil {
			return err
		}
	}

	report, err := metrics.EvalDataset(orig, anon, opts)
	if err != nil {
		return err
	}
	return report.WriteText(stdout)
}

// runStoreNative streams the two stores through metrics.EvalStore —
// the larger-than-RAM evaluation path. It never calls Load.
func runStoreNative(origPath, anonPath string, opts metrics.EvalOptions, filters store.ScanOptions, workers int, stdout io.Writer, verbose bool) error {
	orig, err := store.Open(origPath)
	if err != nil {
		return fmt.Errorf("original: %w", err)
	}
	defer orig.Close()
	anon, err := store.Open(anonPath)
	if err != nil {
		return fmt.Errorf("anonymized: %w", err)
	}
	defer anon.Close()

	opts.Scan = filters
	opts.Scan.Workers = workers
	report, st, err := metrics.EvalStore(context.Background(), orig, anon, opts)
	if err != nil {
		return err
	}
	if err := report.WriteText(stdout); err != nil {
		return err
	}
	if !verbose {
		return nil
	}
	_, err = fmt.Fprintf(stdout, "\nstore-native eval: %d traces paired (%d orig-only, %d anon-only users); pruned %d/%d blocks; peak %d users buffered\n",
		st.Paired, len(st.OnlyOrig), len(st.OnlyAnon),
		st.Orig.BlocksPruned+st.Anon.BlocksPruned, st.Orig.BlocksTotal+st.Anon.BlocksTotal,
		st.PeakBufferedUsers)
	return err
}

// readStays parses the stays CSV written by mobigen.
func readStays(path string) ([]synth.Stay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open stays: %w", err)
	}
	defer f.Close()
	return synth.ReadStays(f)
}

package main

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"mobipriv"
	"mobipriv/internal/store"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./cmd/mobieval -run TestGoldenReport -args -update
var update = flag.Bool("update", false, "rewrite golden files")

// fixture writes raw.csv, anon.csv and stays.csv into a temp dir. Both
// datasets are quantized to store resolution (1e-7 degrees, microsecond
// times) so that a .mstore round trip of the CSVs is lossless and the
// batch and store-native paths evaluate bit-identical data.
func fixture(t *testing.T) (raw, anon, stays string) {
	t.Helper()
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 4
	cfg.Sampling = 3 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := mobipriv.New(mobipriv.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Anonymize(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	quantize(g.Dataset)
	quantize(res.Dataset)
	dir := t.TempDir()
	raw = filepath.Join(dir, "raw.csv")
	anon = filepath.Join(dir, "anon.csv")
	stays = filepath.Join(dir, "stays.csv")

	writeCSV := func(path string, write func(f *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			t.Fatal(err)
		}
	}
	writeCSV(raw, func(f *os.File) error { return traceio.WriteCSV(f, g.Dataset) })
	writeCSV(anon, func(f *os.File) error { return traceio.WriteCSV(f, res.Dataset) })
	writeCSV(stays, func(f *os.File) error {
		var b strings.Builder
		b.WriteString("user,lat,lng,enter,leave\n")
		for _, s := range g.Stays {
			b.WriteString(s.User + "," +
				formatFloat(s.Center.Lat) + "," + formatFloat(s.Center.Lng) + "," +
				s.Enter.UTC().Format(time.RFC3339) + "," + s.Leave.UTC().Format(time.RFC3339) + "\n")
		}
		_, err := f.WriteString(b.String())
		return err
	})
	return raw, anon, stays
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// quantize snaps every point to store resolution in place.
func quantize(d *trace.Dataset) {
	for _, tr := range d.Traces() {
		for i := range tr.Points {
			p := &tr.Points[i]
			p.Lat = math.Round(p.Lat*store.CoordScale) / store.CoordScale
			p.Lng = math.Round(p.Lng*store.CoordScale) / store.CoordScale
			p.Time = time.UnixMicro(p.Time.UnixMicro()).UTC()
		}
	}
}

func TestRunFullReport(t *testing.T) {
	raw, anon, stays := fixture(t)
	var out bytes.Buffer
	if err := run([]string{"-orig", raw, "-anon", anon, "-stays", stays}, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"coverage @500m", "trip lengths", "OD flows", "range queries", "POI retrieval attack",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// Pipeline output has pseudonyms: distortion must degrade gracefully.
	if !strings.Contains(report, "spatial distortion") {
		t.Error("distortion section missing entirely")
	}
}

func TestRunWithoutStays(t *testing.T) {
	raw, anon, _ := fixture(t)
	var out bytes.Buffer
	if err := run([]string{"-orig", raw, "-anon", anon}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "POI retrieval attack") {
		t.Error("attack section should require -stays")
	}
}

// TestRunStoreInputs evaluates with both datasets supplied as native
// stores instead of CSV.
func TestRunStoreInputs(t *testing.T) {
	raw, anon, _ := fixture(t)
	dir := t.TempDir()
	toStore := func(csvPath, name string) string {
		f, err := os.Open(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		d, err := traceio.ReadCSV(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := store.WriteDataset(path, d, store.Options{Shards: 2}); err != nil {
			t.Fatal(err)
		}
		return path
	}
	rawStore := toStore(raw, "raw.mstore")
	anonStore := toStore(anon, "anon.mstore")
	var out bytes.Buffer
	if err := run([]string{"-orig", rawStore, "-anon", anonStore}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "coverage") {
		t.Fatalf("missing metrics output:\n%s", out.String())
	}
}

// TestGoldenReport pins the full text report over a small committed
// dataset, so any metric regression — a changed accumulator, a changed
// query derivation, a changed format — shows up as a readable diff.
// Regenerate deliberately with -update.
func TestGoldenReport(t *testing.T) {
	golden := filepath.Join("testdata", "eval_golden.txt")
	var out bytes.Buffer
	err := run([]string{
		"-orig", filepath.Join("testdata", "orig.csv"),
		"-anon", filepath.Join("testdata", "anon.csv"),
		"-queries", "32",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -args -update to create it)", err)
	}
	if !bytes.Equal(want, out.Bytes()) {
		t.Errorf("report drifted from golden:\n--- want\n%s\n--- got\n%s", want, out.Bytes())
	}
}

// TestGoldenReportStoreNative pins that the store-native path emits the
// byte-identical report for the same data (the golden body), plus its
// stats trailer, without ever loading a dataset.
func TestGoldenReportStoreNative(t *testing.T) {
	dir := t.TempDir()
	toStore := func(name string) string {
		f, err := os.Open(filepath.Join("testdata", name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		d, err := traceio.ReadCSV(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".mstore")
		if err := store.WriteDataset(path, d, store.Options{Shards: 3, BlockPoints: 8}); err != nil {
			t.Fatal(err)
		}
		return path
	}
	var out bytes.Buffer
	// -verbose: the stats trailer this test pins is verbose-only output.
	if err := run([]string{"-orig", toStore("orig"), "-anon", toStore("anon"), "-queries", "32", "-verbose"}, &out); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "eval_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	report, trailer, found := strings.Cut(out.String(), "\n\nstore-native eval: ")
	if !found {
		t.Fatalf("store-native stats trailer missing:\n%s", out.String())
	}
	if report+"\n" != string(want) {
		t.Errorf("store-native report differs from golden:\n--- want\n%s\n--- got\n%s", want, report)
	}
	if !strings.Contains(trailer, "traces paired") {
		t.Errorf("trailer = %q", trailer)
	}
}

// TestRunFiltered pins that the -users/-from filters restrict both
// paths to the same slice: the filtered batch report equals the
// filtered store-native report body.
func TestRunFiltered(t *testing.T) {
	args := func(orig, anon string) []string {
		return []string{
			"-orig", orig, "-anon", anon,
			"-queries", "16", "-users", "g01,g02", "-from", "1735725900",
		}
	}
	var batch bytes.Buffer
	if err := run(args(filepath.Join("testdata", "orig.csv"), filepath.Join("testdata", "anon.csv")), &batch); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(batch.String(), "original:   2 traces") {
		t.Fatalf("user filter not applied:\n%s", batch.String())
	}

	dir := t.TempDir()
	toStore := func(name string) string {
		f, err := os.Open(filepath.Join("testdata", name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		d, err := traceio.ReadCSV(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".mstore")
		if err := store.WriteDataset(path, d, store.Options{Shards: 2, BlockPoints: 4}); err != nil {
			t.Fatal(err)
		}
		return path
	}
	var native bytes.Buffer
	// -verbose so the trailer exists for Cut to strip below.
	if err := run(append(args(toStore("orig"), toStore("anon")), "-verbose"), &native); err != nil {
		t.Fatal(err)
	}
	body, _, _ := strings.Cut(native.String(), "\n\nstore-native eval: ")
	if body+"\n" != batch.String() {
		t.Errorf("filtered store-native report differs from filtered batch report:\n--- batch\n%s\n--- native\n%s", batch.String(), body)
	}
}

// TestStoreNativeStaysMatchesBatch pins that -stays now works on the
// store-native path and scores the attack identically to the batch
// path on the same data: the attack section of both reports must be
// byte-for-byte equal.
func TestStoreNativeStaysMatchesBatch(t *testing.T) {
	raw, anon, stays := fixture(t)
	var batch bytes.Buffer
	if err := run([]string{"-orig", raw, "-anon", anon, "-stays", stays}, &batch); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	toStore := func(csvPath, name string) string {
		f, err := os.Open(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		d, err := traceio.ReadCSV(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := store.WriteDataset(path, d, store.Options{Shards: 3, BlockPoints: 16}); err != nil {
			t.Fatal(err)
		}
		return path
	}
	var native bytes.Buffer
	err := run([]string{
		"-orig", toStore(raw, "raw.mstore"), "-anon", toStore(anon, "anon.mstore"),
		"-stays", stays,
	}, &native)
	if err != nil {
		t.Fatal(err)
	}

	cutAttack := func(s string) string {
		_, atk, ok := strings.Cut(s, "\nPOI retrieval attack:\n")
		if !ok {
			t.Fatalf("attack section missing:\n%s", s)
		}
		// The store-native report appends its stats trailer after the
		// attack section.
		atk, _, _ = strings.Cut(atk, "\n\nstore-native eval: ")
		return strings.TrimRight(atk, "\n")
	}
	if got, want := cutAttack(native.String()), cutAttack(batch.String()); got != want {
		t.Errorf("store-native attack scores differ from batch:\n--- batch\n%s\n--- native\n%s", want, got)
	}
}

func TestRunErrors(t *testing.T) {
	raw, anon, _ := fixture(t)
	cases := [][]string{
		{},
		{"-orig", raw},
		{"-orig", raw, "-anon", "/nonexistent.csv"},
		{"-orig", raw, "-anon", anon, "-stays", "/nonexistent.csv"},
		{"-orig", raw, "-anon", anon, "-cell", "-5"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestReadStaysBadRows(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"bad fields": "user,lat\n",
		"bad lat":    "u,xx,4,2015-06-30T08:00:00Z,2015-06-30T09:00:00Z\n",
		"bad enter":  "u,45,4,notatime,2015-06-30T09:00:00Z\n",
		"bad leave":  "u,45,4,2015-06-30T08:00:00Z,notatime\n",
	} {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(dir, strings.ReplaceAll(name, " ", "_")+".csv")
			if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := readStays(p); err == nil {
				t.Errorf("content %q accepted", content)
			}
		})
	}
}

package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobipriv/internal/experiment"
	"mobipriv/internal/store"
	"mobipriv/internal/synth"
)

func TestRunSelectedQuick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E1", "-scale", "quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E1:") {
		t.Fatalf("missing E1 table:\n%s", s)
	}
	if !strings.Contains(s, "quick scale") {
		t.Fatalf("missing scale footer:\n%s", s)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E1, E3", "-scale", "quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E1:") || !strings.Contains(s, "== E3:") {
		t.Fatalf("missing tables:\n%s", s)
	}
}

// TestRunDatasetOverride runs an experiment over a native store
// instead of the synthetic workloads.
func TestRunDatasetOverride(t *testing.T) {
	defer experiment.SetWorkload(nil)
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 4
	cfg.Sampling = 3 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.mstore")
	if err := store.WriteDataset(path, g.Dataset, store.Options{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-exp", "E1", "-scale", "quick", "-dataset", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "running over "+path) {
		t.Fatalf("missing dataset banner:\n%s", s)
	}
	if !strings.Contains(s, "== E1:") {
		t.Fatalf("missing E1 table:\n%s", s)
	}

	// E9 sweeps the workload size; running it over a fixed dataset
	// would fabricate per-density rows, so it must refuse.
	if err := run([]string{"-exp", "E9", "-scale", "quick", "-dataset", path}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "sweep") {
		t.Fatalf("E9 with -dataset: err = %v, want sweep-incompatibility error", err)
	}

	// Multi-workload experiments collapse to one honestly-labeled run
	// instead of duplicating the dataset under workload names.
	out.Reset()
	if err := run([]string{"-exp", "E2", "-scale", "quick", "-dataset", path}, &out); err != nil {
		t.Fatalf("E2 with -dataset: %v", err)
	}
	if !strings.Contains(out.String(), "dataset") || strings.Contains(out.String(), "taxi") {
		t.Fatalf("E2 rows not collapsed to 'dataset':\n%s", out.String())
	}
}

// TestRunDatasetSkipsSweeps pins that -exp all with -dataset skips the
// sweep experiments with a note instead of aborting mid-run.
func TestRunDatasetSkipsSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment at quick scale")
	}
	defer experiment.SetWorkload(nil)
	// Quick-scale-sized workload: some experiments (w4m rows in E4)
	// legitimately need enough users to form anonymity sets.
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 12
	cfg.Sampling = 2 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "all.mstore")
	if err := store.WriteDataset(path, g.Dataset, store.Options{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-scale", "quick", "-dataset", path}, &out); err != nil {
		t.Fatalf("-exp all with -dataset: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "(E9 skipped:") {
		t.Fatalf("missing E9 skip note:\n%s", s)
	}
	if !strings.Contains(s, "(E13 skipped:") {
		t.Fatalf("missing E13 (ground-truth) skip note:\n%s", s)
	}
	for _, id := range []string{"== E1:", "== E8:", "== E10:", "== E15:"} {
		if !strings.Contains(s, id) {
			t.Fatalf("missing %s table (run aborted?):\n%s", id, s)
		}
	}
}

func TestRunErrors(t *testing.T) {
	defer experiment.SetWorkload(nil)
	cases := [][]string{
		{"-exp", "E99"},
		{"-scale", "galactic"},
		{"-dataset", "/nonexistent.mstore"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

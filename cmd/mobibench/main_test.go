package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSelectedQuick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E1", "-scale", "quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E1:") {
		t.Fatalf("missing E1 table:\n%s", s)
	}
	if !strings.Contains(s, "quick scale") {
		t.Fatalf("missing scale footer:\n%s", s)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E1, E3", "-scale", "quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E1:") || !strings.Contains(s, "== E3:") {
		t.Fatalf("missing tables:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-exp", "E99"},
		{"-scale", "galactic"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// Command mobibench regenerates the evaluation tables (experiments
// E1..E12 from DESIGN.md §4 / EXPERIMENTS.md).
//
// Usage:
//
//	mobibench                 # run everything at full scale
//	mobibench -exp E2,E7      # selected experiments
//	mobibench -scale quick    # the reduced workloads used by tests
//
// The comparative experiments resolve their mechanism lineup from the
// mobipriv registry; override it with -mechanisms, e.g.
//
//	mobibench -exp E2 -mechanisms "raw,promesse(epsilon=200),geoi(0.05)"
//
// With -dataset the synthetic workloads are replaced by a real dataset
// (any traceio format or a native .mstore store); add -stays to supply
// ground truth for the POI-attack experiments. Under -exp all,
// experiments the dataset cannot drive (density sweeps; attacks
// without -stays) are skipped with a note:
//
//	mobibench -exp E2 -dataset beijing.mstore -stays stays.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mobipriv"
	"mobipriv/internal/cliutil"
	"mobipriv/internal/experiment"
	"mobipriv/internal/store"
	"mobipriv/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobibench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobibench", flag.ContinueOnError)
	var (
		exps      = fs.String("exp", "all", "comma-separated experiment ids (e.g. E2,E7) or 'all'")
		scale     = fs.String("scale", "full", "workload scale: quick or full")
		dataset   = fs.String("dataset", "", "run experiments over this dataset (.csv/.jsonl/.plt[.gz] or .mstore) instead of the synthetic workloads")
		stays     = fs.String("stays", "", "ground-truth stays CSV for -dataset (mobigen format; enables the POI-attack experiments)")
		lineup    = fs.String("mechanisms", "", "comma-separated mechanism specs overriding the standard lineup (default: "+strings.Join(experiment.Lineup(), ",")+")")
		listMechs = fs.Bool("list-mechanisms", false, "print the registered mechanism names and exit")
		verbose   = cliutil.Verbose(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listMechs {
		for _, name := range mobipriv.Mechanisms() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	if *lineup != "" {
		if err := experiment.SetLineup(mobipriv.SplitSpecs(*lineup)); err != nil {
			return err
		}
	}
	if *stays != "" && *dataset == "" {
		return fmt.Errorf("-stays requires -dataset")
	}
	if *dataset != "" {
		d, err := store.ReadDataset(context.Background(), *dataset)
		if err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		g := &synth.Generated{Dataset: d}
		note := "no ground-truth stays: POI-attack experiments are skipped under -exp all"
		if *stays != "" {
			f, err := os.Open(*stays)
			if err != nil {
				return fmt.Errorf("open stays: %w", err)
			}
			g.Stays, err = synth.ReadStays(f)
			f.Close()
			if err != nil {
				return err
			}
			note = fmt.Sprintf("%d ground-truth stays", len(g.Stays))
		}
		experiment.SetWorkload(g)
		fmt.Fprintf(stdout, "running over %s: %s (%s)\n\n", *dataset, d, note)
	}
	var sc experiment.Scale
	switch *scale {
	case "quick":
		sc = experiment.Quick
	case "full":
		sc = experiment.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scale)
	}

	var selected []experiment.Experiment
	if *exps == "all" {
		selected = experiment.All()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			e, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		if *verbose {
			fmt.Fprintf(os.Stderr, "mobibench: running %s (%s) at %s scale\n", e.ID, e.Title, sc)
		}
		start := time.Now()
		table, err := e.Run(sc)
		if err != nil {
			// Under -exp all, a dataset override skips the experiments
			// the dataset cannot honestly drive — density sweeps
			// (ErrWorkloadOverride) and, without -stays, anything that
			// needs ground truth — instead of aborting the remaining
			// tables; an explicitly requested experiment fails loudly.
			if *dataset != "" && *exps == "all" {
				fmt.Fprintf(stdout, "(%s skipped: %v)\n\n", e.ID, err)
				continue
			}
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := table.Render(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "(%s at %s scale in %s)\n\n", e.ID, sc, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobipriv/internal/store"
	"mobipriv/internal/synth"
	"mobipriv/internal/traceio"
)

// writeInput generates a small commuter dataset CSV and returns its path.
func writeInput(t *testing.T) string {
	t.Helper()
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 4
	cfg.Sampling = 3 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := traceio.WriteCSV(f, g.Dataset); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPipeline(t *testing.T) {
	in := writeInput(t)
	var out bytes.Buffer
	if err := run([]string{"-in", in}, &out); err != nil {
		t.Fatal(err)
	}
	d, err := traceio.ReadCSV(&out)
	if err != nil {
		t.Fatalf("pipeline output unreadable: %v", err)
	}
	for _, u := range d.Users() {
		if !strings.HasPrefix(u, "p") {
			t.Fatalf("user %q not pseudonymized", u)
		}
	}
}

func TestRunMechanisms(t *testing.T) {
	in := writeInput(t)
	for _, mech := range []string{"promesse", "geoi", "w4m"} {
		t.Run(mech, func(t *testing.T) {
			var out bytes.Buffer
			args := []string{"-in", in, "-mechanism", mech}
			if mech == "w4m" {
				args = append(args, "-k", "2", "-delta", "500")
			}
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
			if _, err := traceio.ReadCSV(&out); err != nil {
				t.Fatalf("output unreadable: %v", err)
			}
		})
	}
}

func TestRunOutputFormats(t *testing.T) {
	in := writeInput(t)
	dir := t.TempDir()
	for _, name := range []string{"out.csv", "out.jsonl", "out.geojson"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			if err := run([]string{"-in", in, "-mechanism", "promesse", "-out", path}, &bytes.Buffer{}); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil || len(data) == 0 {
				t.Fatalf("output file: %v bytes, err %v", len(data), err)
			}
		})
	}
}

// TestRunStoreInOut anonymizes straight from a native store into a
// native store: no text round-trip on either side.
func TestRunStoreInOut(t *testing.T) {
	in := writeInput(t)
	dir := t.TempDir()
	inStore := filepath.Join(dir, "in.mstore")
	f, err := os.Open(in)
	if err != nil {
		t.Fatal(err)
	}
	d, err := traceio.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteDataset(inStore, d, store.Options{Shards: 2}); err != nil {
		t.Fatal(err)
	}

	outStore := filepath.Join(dir, "out.mstore")
	if err := run([]string{"-in", inStore, "-out", outStore}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(outStore)
	if err != nil {
		t.Fatalf("output store unreadable: %v", err)
	}
	defer s.Close()
	anon, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if anon.Len() == 0 {
		t.Fatal("output store is empty")
	}
	for _, u := range anon.Users() {
		if !strings.HasPrefix(u, "p") {
			t.Fatalf("user %q not pseudonymized", u)
		}
	}
}

func TestRunErrors(t *testing.T) {
	in := writeInput(t)
	cases := [][]string{
		{},                                   // missing -in
		{"-in", "/nonexistent.csv"},          // unreadable input
		{"-in", in, "-mechanism", "quantum"}, // unknown mechanism
		{"-in", in, "-epsilon", "-5"},        // invalid epsilon
		{"-in", in, "-mechanism", "w4m", "-k", "1"}, // invalid k
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

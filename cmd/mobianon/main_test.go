package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobipriv/internal/store"
	"mobipriv/internal/synth"
	"mobipriv/internal/traceio"
)

// writeInput generates a small commuter dataset CSV and returns its path.
func writeInput(t *testing.T) string {
	t.Helper()
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 4
	cfg.Sampling = 3 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := traceio.WriteCSV(f, g.Dataset); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPipeline(t *testing.T) {
	in := writeInput(t)
	var out bytes.Buffer
	if err := run([]string{"-in", in}, &out); err != nil {
		t.Fatal(err)
	}
	d, err := traceio.ReadCSV(&out)
	if err != nil {
		t.Fatalf("pipeline output unreadable: %v", err)
	}
	for _, u := range d.Users() {
		if !strings.HasPrefix(u, "p") {
			t.Fatalf("user %q not pseudonymized", u)
		}
	}
}

func TestRunMechanisms(t *testing.T) {
	in := writeInput(t)
	for _, mech := range []string{"promesse", "geoi", "w4m"} {
		t.Run(mech, func(t *testing.T) {
			var out bytes.Buffer
			args := []string{"-in", in, "-mechanism", mech}
			if mech == "w4m" {
				args = append(args, "-k", "2", "-delta", "500")
			}
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
			if _, err := traceio.ReadCSV(&out); err != nil {
				t.Fatalf("output unreadable: %v", err)
			}
		})
	}
}

func TestRunOutputFormats(t *testing.T) {
	in := writeInput(t)
	dir := t.TempDir()
	for _, name := range []string{"out.csv", "out.jsonl", "out.geojson"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			if err := run([]string{"-in", in, "-mechanism", "promesse", "-out", path}, &bytes.Buffer{}); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil || len(data) == 0 {
				t.Fatalf("output file: %v bytes, err %v", len(data), err)
			}
		})
	}
}

// TestRunStoreInOut anonymizes straight from a native store into a
// native store: no text round-trip on either side.
func TestRunStoreInOut(t *testing.T) {
	in := writeInput(t)
	dir := t.TempDir()
	inStore := filepath.Join(dir, "in.mstore")
	f, err := os.Open(in)
	if err != nil {
		t.Fatal(err)
	}
	d, err := traceio.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteDataset(inStore, d, store.Options{Shards: 2}); err != nil {
		t.Fatal(err)
	}

	outStore := filepath.Join(dir, "out.mstore")
	if err := run([]string{"-in", inStore, "-out", outStore}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(outStore)
	if err != nil {
		t.Fatalf("output store unreadable: %v", err)
	}
	defer s.Close()
	anon, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if anon.Len() == 0 {
		t.Fatal("output store is empty")
	}
	for _, u := range anon.Users() {
		if !strings.HasPrefix(u, "p") {
			t.Fatalf("user %q not pseudonymized", u)
		}
	}
}

// TestRunStoreNative exercises the automatic store-native path: a
// per-trace mechanism with .mstore on both sides must stream store to
// store and produce exactly what the in-memory path produces.
func TestRunStoreNative(t *testing.T) {
	in := writeInput(t)
	dir := t.TempDir()
	inStore := filepath.Join(dir, "in.mstore")
	f, err := os.Open(in)
	if err != nil {
		t.Fatal(err)
	}
	d, err := traceio.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteDataset(inStore, d, store.Options{Shards: 4}); err != nil {
		t.Fatal(err)
	}

	outStore := filepath.Join(dir, "native.mstore")
	if err := run([]string{"-in", inStore, "-out", outStore, "-mechanism", "geoi(epsilon=0.01,seed=5)"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(outStore)
	if err != nil {
		t.Fatalf("store-native output unreadable: %v", err)
	}
	defer s.Close()
	got, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the in-memory path over the same store, text output.
	refCSV := filepath.Join(dir, "ref.csv")
	if err := run([]string{"-in", inStore, "-out", refCSV, "-mechanism", "geoi(epsilon=0.01,seed=5)"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(refCSV)
	if err != nil {
		t.Fatal(err)
	}
	want, err := traceio.ReadCSV(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() || got.TotalPoints() != want.TotalPoints() {
		t.Fatalf("store-native output (%d users, %d points) != in-memory output (%d users, %d points)",
			got.Len(), got.TotalPoints(), want.Len(), want.TotalPoints())
	}
	for _, u := range want.Users() {
		wtr, gtr := want.ByUser(u), got.ByUser(u)
		if gtr == nil {
			t.Fatalf("user %q missing from store-native output", u)
		}
		for i := range wtr.Points {
			wp, gp := wtr.Points[i], gtr.Points[i]
			// The store quantizes coordinates to 1e-7° and times to the
			// microsecond; CSV keeps full floats and nanoseconds.
			if d := wp.Lat - gp.Lat; d > 1e-7 || d < -1e-7 {
				t.Fatalf("user %q point %d: lat %v != %v", u, i, gp.Lat, wp.Lat)
			}
			if d := wp.Lng - gp.Lng; d > 1e-7 || d < -1e-7 {
				t.Fatalf("user %q point %d: lng %v != %v", u, i, gp.Lng, wp.Lng)
			}
			if d := wp.Time.Sub(gp.Time); d > time.Microsecond || d < -time.Microsecond {
				t.Fatalf("user %q point %d: time %v != %v", u, i, gp.Time, wp.Time)
			}
		}
	}
	// The store-native output preserves the input's shard count.
	if got, want := s.Manifest().Shards, 4; got != want {
		t.Errorf("output store has %d shards, want input's %d", got, want)
	}

	// In-place rewrite must be refused before the input is clobbered.
	if err := run([]string{"-in", inStore, "-out", inStore, "-mechanism", "raw"}, &bytes.Buffer{}); err == nil {
		t.Fatal("in-place store-native run accepted")
	}
	if _, err := store.Open(inStore); err != nil {
		t.Fatalf("input store damaged by rejected in-place run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	in := writeInput(t)
	cases := [][]string{
		{},                                   // missing -in
		{"-in", "/nonexistent.csv"},          // unreadable input
		{"-in", in, "-mechanism", "quantum"}, // unknown mechanism
		{"-in", in, "-epsilon", "-5"},        // invalid epsilon
		{"-in", in, "-mechanism", "w4m", "-k", "1"}, // invalid k
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunStoreNativeFiltered pins the filtered store-native run: the
// -users filter restricts the output to the selected users, and the
// filters are refused on paths that cannot prune.
func TestRunStoreNativeFiltered(t *testing.T) {
	in := writeInput(t)
	dir := t.TempDir()
	inStore := filepath.Join(dir, "in.mstore")
	f, err := os.Open(in)
	if err != nil {
		t.Fatal(err)
	}
	d, err := traceio.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteDataset(inStore, d, store.Options{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	user := d.Users()[0]

	outStore := filepath.Join(dir, "filtered.mstore")
	if err := run([]string{"-in", inStore, "-out", outStore, "-mechanism", "raw", "-users", user}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(outStore)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.ByUser(user) == nil {
		t.Fatalf("filtered run produced users %v, want only %q", got.Users(), user)
	}

	// Filters without a store-native run must be refused, not ignored.
	if err := run([]string{"-in", in, "-users", user}, &bytes.Buffer{}); err == nil {
		t.Fatal("filters accepted on the batch path")
	}
	if err := run([]string{"-in", inStore, "-out", outStore + "2", "-mechanism", "w4m", "-users", user}, &bytes.Buffer{}); err == nil {
		t.Fatal("filters accepted for a batch-only mechanism")
	}
}

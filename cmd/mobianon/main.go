// Command mobianon anonymizes a mobility dataset with any mechanism
// from the mobipriv registry: the paper's pipeline, the smoothing-only
// PROMESSE variant, or one of the baselines.
//
// The -mechanism flag takes a registry spec; parameters may be given in
// the spec itself or through the legacy flags (spec parameters win):
//
//	mobianon -in raw.csv -out anon.csv                        # full pipeline
//	mobianon -in raw.csv -mechanism "promesse(epsilon=200)"   # smoothing only
//	mobianon -in raw.csv -mechanism promesse -epsilon 200     # same, via flags
//	mobianon -in raw.csv -mechanism "geoi(0.01)"
//	mobianon -in raw.csv -mechanism "w4m(k=4,delta=200)"
//	mobianon -in raw.csv -workers 8                           # parallel per-trace work
//	mobianon -in big.mstore -out anon.mstore                  # native store in and out
//
// When the input and the output are both .mstore stores and the
// mechanism is per-trace-capable (raw, promesse, geoi), the run is
// store-native: traces stream from the input store through the worker
// pool into the output store without the dataset ever being resident —
// memory stays flat however large the store. Batch-only mechanisms
// (pipeline, w4m) load the dataset as before.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"mobipriv"
	"mobipriv/internal/cliutil"
	otrace "mobipriv/internal/obs/trace"
	"mobipriv/internal/store"
	"mobipriv/internal/traceio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobianon:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobianon", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "input dataset (.csv/.jsonl/.plt, optionally .gz, or an .mstore store); required")
		out       = fs.String("out", "", "output file (default stdout, csv; .jsonl/.geojson/.mstore by extension)")
		mech      = fs.String("mechanism", "pipeline", "mechanism spec, e.g. pipeline, promesse(epsilon=200), geoi(0.01), w4m(k=4,delta=200), raw")
		workers   = fs.Int("workers", runtime.NumCPU(), "worker pool size for per-trace work")
		epsilon   = fs.Float64("epsilon", 100, "smoothing spacing in meters (pipeline, promesse)")
		radius    = fs.Float64("zone-radius", 100, "mix-zone radius in meters (pipeline)")
		window    = fs.Duration("zone-window", time.Minute, "mix-zone co-location window (pipeline)")
		seed      = fs.Int64("seed", 1, "randomness seed")
		geoiEps   = fs.Float64("geoi-epsilon", 0.01, "geo-indistinguishability epsilon in 1/m (geoi)")
		k         = fs.Int("k", 4, "anonymity set size (w4m)")
		delta     = fs.Float64("delta", 200, "anonymity tube diameter in meters (w4m)")
		noSwap    = fs.Bool("no-swap", false, "disable identity swapping (pipeline)")
		noSupp    = fs.Bool("no-suppress", false, "disable in-zone suppression (pipeline)")
		pseudonym = fs.String("pseudonym-prefix", "p", "pseudonym prefix (pipeline; empty keeps labels)")
		bbox      = fs.String("bbox", "", "anonymize only points inside minLat,minLng,maxLat,maxLng (store-native runs)")
		from      = fs.String("from", "", "anonymize only points at or after this time (store-native runs)")
		to        = fs.String("to", "", "anonymize only points at or before this time (store-native runs)")
		usersFlag = fs.String("users", "", "anonymize only these comma-separated users (store-native runs)")
		traceSlow = fs.Duration("trace-slow", 0, "log per-trace spans slower than this to stderr (store-native runs; 0 disables)")
		verbose   = cliutil.Verbose(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	filters, err := cliutil.ScanFilters(*bbox, *from, *to, *usersFlag)
	if err != nil {
		return err
	}

	// A bare mechanism name takes its parameters from the legacy flags;
	// a parenthesized spec is passed to the registry verbatim.
	spec := strings.TrimSpace(*mech)
	if !strings.Contains(spec, "(") {
		switch spec {
		case "pipeline":
			// The prefix is spliced into a spec, so it must not contain
			// spec metacharacters; reject early with a named error
			// rather than letting the parser produce a confusing one.
			if strings.ContainsAny(*pseudonym, "(),= ") {
				return fmt.Errorf("-pseudonym-prefix %q must not contain '(', ')', ',', '=' or spaces", *pseudonym)
			}
			spec = fmt.Sprintf("pipeline(epsilon=%g,zone-radius=%g,zone-window=%s,seed=%d,no-swap=%t,no-suppress=%t,prefix=%s)",
				*epsilon, *radius, *window, *seed, *noSwap, *noSupp, *pseudonym)
		case "promesse":
			spec = fmt.Sprintf("promesse(epsilon=%g)", *epsilon)
		case "geoi":
			spec = fmt.Sprintf("geoi(epsilon=%g,seed=%d)", *geoiEps, *seed)
		case "w4m":
			spec = fmt.Sprintf("w4m(k=%d,delta=%g)", *k, *delta)
		}
	}
	m, err := mobipriv.FromSpec(spec)
	if err != nil {
		return err
	}
	runner := mobipriv.NewRunner(mobipriv.WithWorkers(*workers))
	if *traceSlow > 0 {
		// Sample everything: the point of -trace-slow on a batch tool is
		// to name the traces that dominate the run, not to subsample.
		runner.SetTracer(otrace.New(otrace.Config{
			SampleRate:    1,
			Seed:          uint64(*seed),
			SlowThreshold: *traceSlow,
			SlowFunc: func(rs *otrace.RootSpan) {
				fmt.Fprintf(os.Stderr, "mobianon: slow %s %s (%s): %s\n",
					rs.Name, attrValue(rs.Root.Attrs, "user"), rs.Trace, rs.Root.Duration)
			},
		}))
	}

	// Store in, store out, per-trace mechanism: run store-natively,
	// trace-by-trace, without ever materializing the dataset. Batch-only
	// mechanisms (pipeline, w4m) fall through to the in-memory path.
	if _, perTrace := mobipriv.AsPerTrace(m); perTrace &&
		strings.HasSuffix(*in, ".mstore") && strings.HasSuffix(*out, ".mstore") {
		return runStoreNative(*in, *out, m, runner, filters, *verbose)
	}
	if cliutil.HasFilters(filters) {
		return fmt.Errorf("-bbox/-from/-to/-users need a store-native run (.mstore in and out, per-trace mechanism); filter text inputs with mobistore instead")
	}

	d, err := store.ReadDataset(context.Background(), *in)
	if err != nil {
		return err
	}
	res, err := runner.Run(context.Background(), m, d)
	if err != nil {
		return err
	}
	published := res.Dataset
	if *verbose {
		for _, rep := range res.Reports {
			fmt.Fprintf(os.Stderr, "%s: %s\n", m.Name(), describeStage(rep))
		}
	}

	if strings.HasSuffix(*out, ".mstore") {
		// Overwrite matches the text outputs' os.Create truncation.
		return store.WriteDataset(*out, published, store.Options{Overwrite: true})
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output: %w", err)
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(*out, ".geojson") {
		return traceio.WriteGeoJSON(w, published)
	}
	if strings.HasSuffix(*out, ".jsonl") {
		return traceio.WriteJSONL(w, published)
	}
	return traceio.WriteCSV(w, published)
}

// runStoreNative anonymizes store-to-store via Runner.RunStoreWith:
// the larger-than-RAM path, memory bounded by workers × largest trace.
// The bbox/time/user filters restrict the input scan with footer
// pruning, so "anonymize last week, this city" never reads the rest of
// the store.
func runStoreNative(in, out string, m mobipriv.Mechanism, runner *mobipriv.Runner, filters store.ScanOptions, verbose bool) error {
	if store.SamePath(in, out) {
		// Creating the output would unlink the input's segments before
		// they are read; a mid-run failure would lose the dataset.
		return fmt.Errorf("store-native run cannot rewrite %s in place; write to a new store and move it", in)
	}
	s, err := store.Open(in)
	if err != nil {
		return err
	}
	defer s.Close()
	// Keep the input's shard count so scan parallelism carries over;
	// Overwrite matches the text outputs' os.Create truncation.
	w, err := store.Create(out, store.Options{Shards: s.Manifest().Shards, Overwrite: true})
	if err != nil {
		return err
	}
	stats, err := runner.RunStoreWith(context.Background(), s, w, m, filters)
	if err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "%s: store-native: %d traces (%d points) -> %d traces (%d points), %d users dropped, %d/%d blocks pruned, peak %d in flight\n",
			m.Name(), stats.Traces, stats.Points, stats.OutTraces, stats.OutPoints, len(stats.Dropped),
			stats.BlocksPruned, stats.BlocksTotal, stats.PeakInFlight)
	}
	return nil
}

// attrValue returns the value of the named span attribute, or "?".
func attrValue(attrs []otrace.Attr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return "?"
}

// describeStage renders one stage report for the operator.
func describeStage(rep mobipriv.StageReport) string {
	var parts []string
	if rep.Zones > 0 || rep.Stage == "mixzones" {
		parts = append(parts, fmt.Sprintf("%d zones, %d swaps", rep.Zones, rep.Swaps))
	}
	if rep.Suppressed > 0 {
		parts = append(parts, fmt.Sprintf("%d points suppressed", rep.Suppressed))
	}
	if len(rep.Dropped) > 0 {
		parts = append(parts, fmt.Sprintf("%d users dropped", len(rep.Dropped)))
	}
	if len(parts) == 0 {
		parts = append(parts, "ok")
	}
	return fmt.Sprintf("%s: %s", rep.Stage, strings.Join(parts, ", "))
}

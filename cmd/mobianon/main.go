// Command mobianon anonymizes a mobility dataset with the paper's
// pipeline or one of the baselines.
//
// Usage:
//
//	mobianon -in raw.csv -out anon.csv                       # full pipeline
//	mobianon -in raw.csv -mechanism promesse -epsilon 200    # smoothing only
//	mobianon -in raw.csv -mechanism geoi -geoi-epsilon 0.01
//	mobianon -in raw.csv -mechanism w4m -k 4 -delta 200
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mobipriv"
	"mobipriv/internal/baseline/geoind"
	"mobipriv/internal/baseline/w4m"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobianon:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobianon", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "input dataset (.csv or .jsonl); required")
		out       = fs.String("out", "", "output file (default stdout, csv)")
		mech      = fs.String("mechanism", "pipeline", "pipeline, promesse, geoi, w4m")
		epsilon   = fs.Float64("epsilon", 100, "smoothing spacing in meters (pipeline, promesse)")
		radius    = fs.Float64("zone-radius", 100, "mix-zone radius in meters (pipeline)")
		window    = fs.Duration("zone-window", time.Minute, "mix-zone co-location window (pipeline)")
		seed      = fs.Int64("seed", 1, "randomness seed")
		geoiEps   = fs.Float64("geoi-epsilon", 0.01, "geo-indistinguishability epsilon in 1/m (geoi)")
		k         = fs.Int("k", 4, "anonymity set size (w4m)")
		delta     = fs.Float64("delta", 200, "anonymity tube diameter in meters (w4m)")
		noSwap    = fs.Bool("no-swap", false, "disable identity swapping (pipeline)")
		noSupp    = fs.Bool("no-suppress", false, "disable in-zone suppression (pipeline)")
		pseudonym = fs.String("pseudonym-prefix", "p", "pseudonym prefix (pipeline; empty keeps labels)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	d, err := readDataset(*in)
	if err != nil {
		return err
	}

	var published *trace.Dataset
	switch *mech {
	case "pipeline":
		opts := mobipriv.DefaultOptions()
		opts.Epsilon = *epsilon
		opts.ZoneRadius = *radius
		opts.ZoneWindow = *window
		opts.Seed = *seed
		opts.DisableSwapping = *noSwap
		opts.DisableSuppression = *noSupp
		opts.PseudonymPrefix = *pseudonym
		a, err := mobipriv.New(opts)
		if err != nil {
			return err
		}
		res, err := a.Anonymize(d)
		if err != nil {
			return err
		}
		published = res.Dataset
		fmt.Fprintf(os.Stderr, "pipeline: %d zones, %d swaps, %d points suppressed, %d users dropped\n",
			res.Zones, res.Swaps, res.SuppressedPoints, len(res.DroppedUsers))
	case "promesse":
		outDS, dropped, err := mobipriv.SmoothOnly(d, *epsilon)
		if err != nil {
			return err
		}
		published = outDS
		fmt.Fprintf(os.Stderr, "promesse: %d users dropped (too short)\n", len(dropped))
	case "geoi":
		published, err = geoind.PerturbDataset(d, geoind.Config{Epsilon: *geoiEps, Seed: *seed})
		if err != nil {
			return err
		}
	case "w4m":
		res, err := w4m.Anonymize(d, w4m.Config{K: *k, Delta: *delta})
		if err != nil {
			return err
		}
		published = res.Dataset
		fmt.Fprintf(os.Stderr, "w4m: %d clusters, %d users suppressed\n",
			len(res.Clusters), len(res.Suppressed))
	default:
		return fmt.Errorf("unknown mechanism %q", *mech)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output: %w", err)
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(*out, ".geojson") {
		return traceio.WriteGeoJSON(w, published)
	}
	if strings.HasSuffix(*out, ".jsonl") {
		return traceio.WriteJSONL(w, published)
	}
	return traceio.WriteCSV(w, published)
}

func readDataset(path string) (*trace.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open input: %w", err)
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".jsonl":
		return traceio.ReadJSONL(f)
	default:
		return traceio.ReadCSV(f)
	}
}

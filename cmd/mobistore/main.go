// Command mobistore manages mobipriv's native on-disk dataset format
// (internal/store): sharded, columnar ".mstore" directories that the
// batch tools (mobianon, mobieval, mobibench), the generator (mobigen)
// and the streaming service (mobiserve) all read and write.
//
// Subcommands:
//
//	mobistore build -in raw.csv[.gz] -out data.mstore [-shards 8] [-block 4096]
//	mobistore info data.mstore [-blocks]
//	mobistore cat data.mstore [-format csv|jsonl] [-users a,b] [-bbox minLat,minLng,maxLat,maxLng] [-from t] [-to t]
//	mobistore compact -in frag.mstore -out tidy.mstore [-shards 8]
//	mobistore merge -out all.mstore node0.mstore node1.mstore [node2.mstore ...]
//	mobistore diff orig.mstore anon.mstore [-workers 4]
//
// build streams any traceio input (CSV, JSONL, Geolife PLT, each
// optionally gzipped) into a store without materializing the dataset.
// cat runs a pruned scan: blocks whose footer stats cannot match the
// filters are skipped without being read. compact rewrites a store —
// typically one grown by mobiserve's streaming sink — merging each
// user's fragmented blocks into contiguous sorted runs; the merge
// streams trace-by-trace (store.Compact), so compacting a store never
// loads the dataset. merge joins the per-node sinks of a multi-node
// fleet (mobirouter in front of N mobiserve workers) into one store
// via the same streaming plumbing (store.Merge); the inputs must hold
// disjoint users, which hash routing guarantees by construction. diff
// pairs two stores user by user
// (store.ScanTracesPaired) and reports each user's divergence — point
// counts and the anonymized points' mean/max displacement from the
// original path — without loading either dataset.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"mobipriv/internal/cliutil"
	"mobipriv/internal/metrics"
	"mobipriv/internal/par"
	"mobipriv/internal/store"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobistore:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mobistore <build|info|cat|compact|merge|diff> [flags] (see go doc mobipriv/cmd/mobistore)")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "build":
		return runBuild(rest)
	case "info":
		return runInfo(rest, stdout)
	case "cat":
		return runCat(rest, stdout)
	case "compact":
		return runCompact(rest, stdout)
	case "merge":
		return runMerge(rest, stdout)
	case "diff":
		return runDiff(rest, stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want build, info, cat, compact, merge or diff)", cmd)
	}
}

// runBuild streams a text dataset into a new store.
func runBuild(args []string) error {
	fs := flag.NewFlagSet("mobistore build", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "input dataset (.csv/.jsonl/.plt, optionally .gz); required")
		out    = fs.String("out", "", "output store directory (.mstore); required")
		shards = fs.Int("shards", 8, "segment files (scan parallelism)")
		block  = fs.Int("block", 4096, "max points per block (pruning granularity)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("build: -in and -out are required")
	}
	w, err := store.Create(*out, store.Options{Shards: *shards, BlockPoints: *block, Overwrite: true})
	if err != nil {
		return err
	}
	n := 0
	if err := traceio.DecodeFile(*in, func(user string, p trace.Point) error {
		n++
		return w.Append(user, p)
	}); err != nil {
		return fmt.Errorf("build %s: %w", *in, err)
	}
	if err := w.Close(); err != nil {
		return err
	}
	// Stored points can be fewer than input records when timestamps
	// collapse onto the same on-disk microsecond (e.g. raw PLT dumps).
	fmt.Fprintf(os.Stderr, "built %s: %d records in from %s\n", *out, n, *in)
	return nil
}

// runInfo prints the manifest and, with -blocks, the per-block footer
// stats that pruned scans rely on.
func runInfo(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobistore info", flag.ContinueOnError)
	blocks := fs.Bool("blocks", false, "also list per-block stats")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("info: want exactly one store path")
	}
	s, err := store.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer s.Close()
	man := s.Manifest()
	fmt.Fprintf(stdout, "store:   %s (format %s v%d)\n", fs.Arg(0), man.Format, man.Version)
	fmt.Fprintf(stdout, "users:   %d\n", man.Users)
	fmt.Fprintf(stdout, "points:  %d\n", man.Points)
	if from, to, ok := s.TimeSpan(); ok {
		fmt.Fprintf(stdout, "time:    %s .. %s\n", from.Format(time.RFC3339), to.Format(time.RFC3339))
		fmt.Fprintf(stdout, "bbox:    %s\n", s.Bounds())
	}
	fmt.Fprintf(stdout, "shards:  %d\n", man.Shards)
	fmt.Fprintf(stdout, "gens:    %d\n", man.Generations)
	for _, si := range man.Segments {
		fmt.Fprintf(stdout, "  %s: shard %d gen %d, %d blocks, %d users, %d points\n",
			si.File, si.Shard, si.Gen, si.Blocks, si.Users, si.Points)
	}
	if *blocks {
		return s.Scan(context.Background(), store.ScanOptions{}, func(user string, pts []trace.Point) error {
			fmt.Fprintf(stdout, "  block user=%s points=%d %s..%s\n", user, len(pts),
				pts[0].Time.Format(time.RFC3339), pts[len(pts)-1].Time.Format(time.RFC3339))
			return nil
		})
	}
	return nil
}

// runCat streams matching records out of a store as CSV or JSONL.
func runCat(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobistore cat", flag.ContinueOnError)
	var (
		format  = fs.String("format", "csv", "output format: csv or jsonl")
		users   = fs.String("users", "", "comma-separated user filter")
		bbox    = fs.String("bbox", "", "minLat,minLng,maxLat,maxLng bounding-box filter")
		from    = fs.String("from", "", "keep points at or after this time (RFC 3339 or Unix seconds)")
		to      = fs.String("to", "", "keep points at or before this time (RFC 3339 or Unix seconds)")
		verbose = cliutil.Verbose(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("cat: want exactly one store path")
	}
	opts, err := cliutil.ScanFilters(*bbox, *from, *to, *users)
	if err != nil {
		return fmt.Errorf("cat: %w", err)
	}
	opts.Workers = 1 // one worker: deterministic output order
	var st store.ScanStats
	if *verbose {
		opts.Stats = &st
		defer func() {
			fmt.Fprintf(os.Stderr, "cat: scanned %d points; pruned %d/%d blocks, decoded %d (%d cache hits)\n",
				st.Points, st.BlocksPruned, st.BlocksTotal, st.BlocksDecoded, st.CacheHits)
		}()
	}

	s, err := store.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer s.Close()

	switch *format {
	case "csv":
		fmt.Fprintln(stdout, "user,time,lat,lng")
		return s.Scan(context.Background(), opts, func(user string, pts []trace.Point) error {
			for _, p := range pts {
				fmt.Fprintf(stdout, "%s,%s,%s,%s\n", user,
					p.Time.UTC().Format(time.RFC3339Nano),
					strconv.FormatFloat(p.Lat, 'f', -1, 64),
					strconv.FormatFloat(p.Lng, 'f', -1, 64))
			}
			return nil
		})
	case "jsonl":
		return s.Scan(context.Background(), opts, func(user string, pts []trace.Point) error {
			for _, p := range pts {
				if err := traceio.WriteJSONLRecord(stdout, user, p); err != nil {
					return err
				}
			}
			return nil
		})
	default:
		return fmt.Errorf("cat: unknown format %q (want csv or jsonl)", *format)
	}
}

// runCompact rewrites a store as a streaming per-shard merge
// (store.Compact): each user's fragments are assembled and rewritten
// trace-by-trace, so compacting never needs more memory than the
// fragments of the users in flight — not the dataset.
func runCompact(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobistore compact", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "input store; required")
		out     = fs.String("out", "", "output store; required")
		shards  = fs.Int("shards", 0, "segment count of the output (0 keeps the input's)")
		block   = fs.Int("block", 4096, "max points per block")
		workers = fs.Int("workers", 0, "parallel segment scanners (0 = one per CPU; 1 gives a byte-deterministic output)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("compact: -in and -out are required")
	}
	if store.SamePath(*in, *out) {
		// Creating the output would unlink the input's segments before
		// they are read; a mid-run failure would lose the dataset.
		return fmt.Errorf("compact: cannot rewrite %s in place; write to a new store and move it", *in)
	}
	s, err := store.Open(*in)
	if err != nil {
		return err
	}
	defer s.Close()
	if *shards == 0 {
		*shards = s.Manifest().Shards
	}
	w, err := store.Create(*out, store.Options{Shards: *shards, BlockPoints: *block, Overwrite: true})
	if err != nil {
		return err
	}
	ctx := par.WithWorkers(context.Background(), *workers)
	st, err := store.Compact(ctx, s, w)
	if err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	c, err := store.Open(*out)
	if err != nil {
		return err
	}
	defer c.Close()
	outBlocks := 0
	for _, si := range c.Manifest().Segments {
		outBlocks += si.Blocks
	}
	fmt.Fprintf(stdout, "compacted %s (%d blocks) -> %s (%d blocks), %d users, %d points (peak %d users buffered)\n",
		*in, st.BlocksIn, *out, outBlocks, st.Users, st.Points, st.PeakBufferedUsers)
	return nil
}

// runMerge joins N per-node stores — typically the .mstore sinks of a
// mobiserve fleet behind mobirouter — into one store, streaming
// trace-by-trace (store.Merge): the dataset is never loaded. The
// inputs must hold disjoint users; hash routing guarantees that for
// fleet sinks, and a violation surfaces as a duplicate-user error
// rather than a silent bad merge.
func runMerge(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobistore merge", flag.ContinueOnError)
	var (
		out     = fs.String("out", "", "output store; required")
		shards  = fs.Int("shards", 0, "segment count of the output (0 keeps the first input's)")
		block   = fs.Int("block", 4096, "max points per block")
		workers = fs.Int("workers", 0, "parallel segment scanners (0 = one per CPU; 1 gives a byte-deterministic output)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("merge: -out is required")
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("merge: want at least one input store path")
	}
	var srcs []*store.Store
	defer func() {
		for _, s := range srcs {
			s.Close()
		}
	}()
	for _, in := range fs.Args() {
		if store.SamePath(in, *out) {
			// Creating the output would unlink this input's segments
			// before they are read; a mid-run failure would lose data.
			return fmt.Errorf("merge: cannot merge %s into itself; write to a new store and move it", in)
		}
		s, err := store.Open(in)
		if err != nil {
			return err
		}
		srcs = append(srcs, s)
	}
	if *shards == 0 {
		*shards = srcs[0].Manifest().Shards
	}
	w, err := store.Create(*out, store.Options{Shards: *shards, BlockPoints: *block, Overwrite: true})
	if err != nil {
		return err
	}
	ctx := par.WithWorkers(context.Background(), *workers)
	st, err := store.Merge(ctx, srcs, w)
	if err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "merged %d stores (%d blocks) -> %s, %d users, %d points\n",
		st.Sources, st.BlocksIn, *out, st.Users, st.Points)
	return nil
}

// diffRow is one user's divergence between the two stores.
type diffRow struct {
	user              string
	origPts, anonPts  int
	meanDisp, maxDisp float64
}

// runDiff aligns two stores user by user and prints how far each
// user's anonymized trace strays from the original path. The scan is
// paired and streaming: at any moment only the traces of the users in
// flight are in memory.
func runDiff(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobistore diff", flag.ContinueOnError)
	workers := fs.Int("workers", 0, "parallel segment scanners (0 = one per CPU)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want exactly two store paths (original, anonymized)")
	}
	orig, err := store.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer orig.Close()
	anon, err := store.Open(fs.Arg(1))
	if err != nil {
		return err
	}
	defer anon.Close()

	var (
		mu   sync.Mutex
		rows []diffRow
	)
	st, err := store.ScanTracesPaired(context.Background(), orig, anon,
		store.ScanOptions{Workers: *workers}, func(o, a *trace.Trace) error {
			if o == nil || a == nil {
				return nil // one-sided users are reported from the stats
			}
			row := diffRow{user: o.User, origPts: o.Len(), anonPts: a.Len()}
			if a.Len() > 0 {
				disp, err := metrics.TraceDistortion(o, a)
				if err != nil {
					return fmt.Errorf("user %s: %w", o.User, err)
				}
				var sum float64
				for _, d := range disp {
					sum += d
					if d > row.maxDisp {
						row.maxDisp = d
					}
				}
				row.meanDisp = sum / float64(len(disp))
			}
			mu.Lock()
			rows = append(rows, row)
			mu.Unlock()
			return nil
		})
	if err != nil {
		return err
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].user < rows[j].user })
	fmt.Fprintf(stdout, "%-20s %10s %10s %12s %12s\n", "user", "orig-pts", "anon-pts", "mean-disp-m", "max-disp-m")
	var totOrig, totAnon int
	var meanSum float64
	maxDisp := 0.0
	for _, r := range rows {
		fmt.Fprintf(stdout, "%-20s %10d %10d %12.1f %12.1f\n", r.user, r.origPts, r.anonPts, r.meanDisp, r.maxDisp)
		totOrig += r.origPts
		totAnon += r.anonPts
		meanSum += r.meanDisp
		if r.maxDisp > maxDisp {
			maxDisp = r.maxDisp
		}
	}
	fmt.Fprintf(stdout, "paired %d users (%d -> %d points)", len(rows), totOrig, totAnon)
	if len(rows) > 0 {
		fmt.Fprintf(stdout, ", mean displacement %.1f m, max %.1f m", meanSum/float64(len(rows)), maxDisp)
	}
	fmt.Fprintln(stdout)
	for _, u := range st.OnlyOrig {
		fmt.Fprintf(stdout, "only in %s: %s\n", fs.Arg(0), u)
	}
	for _, u := range st.OnlyAnon {
		fmt.Fprintf(stdout, "only in %s: %s\n", fs.Arg(1), u)
	}
	return nil
}

package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobipriv/internal/store"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// writeSampleCSV writes a small dataset and returns its path plus the
// parsed dataset for comparison.
func writeSampleCSV(t *testing.T) (string, *trace.Dataset) {
	t.Helper()
	base := time.Date(2025, 5, 1, 9, 0, 0, 0, time.UTC)
	d := trace.MustNewDataset([]*trace.Trace{
		trace.MustNew("ann", []trace.Point{
			trace.P(45.1, 5.7, base),
			trace.P(45.2, 5.8, base.Add(time.Minute)),
			trace.P(45.3, 5.9, base.Add(2*time.Minute)),
		}),
		trace.MustNew("bob", []trace.Point{
			trace.P(-12.5, 130.8, base.Add(time.Hour)),
			trace.P(-12.6, 130.9, base.Add(time.Hour+time.Minute)),
		}),
	})
	path := filepath.Join(t.TempDir(), "sample.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := traceio.WriteCSV(f, d); err != nil {
		t.Fatal(err)
	}
	return path, d
}

func TestBuildInfoCat(t *testing.T) {
	csvPath, d := writeSampleCSV(t)
	storePath := filepath.Join(t.TempDir(), "sample.mstore")

	if err := run([]string{"build", "-in", csvPath, "-out", storePath, "-shards", "3"}, &bytes.Buffer{}); err != nil {
		t.Fatalf("build: %v", err)
	}

	var info bytes.Buffer
	if err := run([]string{"info", storePath}, &info); err != nil {
		t.Fatalf("info: %v", err)
	}
	out := info.String()
	for _, want := range []string{"users:   2", "points:  5", "shards:  3"} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q:\n%s", want, out)
		}
	}

	var cat bytes.Buffer
	if err := run([]string{"cat", storePath}, &cat); err != nil {
		t.Fatalf("cat: %v", err)
	}
	got, err := traceio.ReadCSV(bytes.NewReader(cat.Bytes()))
	if err != nil {
		t.Fatalf("cat output is not valid CSV: %v", err)
	}
	if got.Len() != d.Len() || got.TotalPoints() != d.TotalPoints() {
		t.Fatalf("cat round trip = %v, want %v", got, d)
	}
}

func TestCatFilters(t *testing.T) {
	csvPath, _ := writeSampleCSV(t)
	storePath := filepath.Join(t.TempDir(), "f.mstore")
	if err := run([]string{"build", "-in", csvPath, "-out", storePath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var byUser bytes.Buffer
	if err := run([]string{"cat", "-users", "bob", "-format", "jsonl", storePath}, &byUser); err != nil {
		t.Fatalf("cat -users: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(byUser.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("cat -users bob: %d lines, want 2:\n%s", len(lines), byUser.String())
	}
	if strings.Contains(byUser.String(), "ann") {
		t.Errorf("cat -users bob leaked ann:\n%s", byUser.String())
	}

	var byBox bytes.Buffer
	if err := run([]string{"cat", "-bbox", "40,0,50,10", storePath}, &byBox); err != nil {
		t.Fatalf("cat -bbox: %v", err)
	}
	if strings.Contains(byBox.String(), "bob") || !strings.Contains(byBox.String(), "ann") {
		t.Errorf("cat -bbox kept wrong users:\n%s", byBox.String())
	}

	var byTime bytes.Buffer
	if err := run([]string{"cat", "-from", "2025-05-01T10:00:00Z", storePath}, &byTime); err != nil {
		t.Fatalf("cat -from: %v", err)
	}
	if strings.Contains(byTime.String(), "ann") {
		t.Errorf("cat -from kept early points:\n%s", byTime.String())
	}
}

func TestCompactMergesFragments(t *testing.T) {
	// Build a fragmented store the way a streaming sink would: many
	// tiny appends per user.
	fragPath := filepath.Join(t.TempDir(), "frag.mstore")
	w, err := store.Create(fragPath, store.Options{Shards: 2, BlockPoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2025, 5, 2, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 12; i++ {
		if err := w.Append("u1", trace.P(10, 20+float64(i)/1e3, base.Add(time.Duration(i)*time.Minute))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(t.TempDir(), "tidy.mstore")
	var out bytes.Buffer
	if err := run([]string{"compact", "-in", fragPath, "-out", outPath}, &out); err != nil {
		t.Fatalf("compact: %v", err)
	}
	s, err := store.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blocks := 0
	for _, si := range s.Manifest().Segments {
		blocks += si.Blocks
	}
	if blocks != 1 {
		t.Errorf("compacted store has %d blocks, want 1", blocks)
	}
	d, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalPoints() != 12 {
		t.Errorf("compacted store holds %d points, want 12", d.TotalPoints())
	}
	if !strings.Contains(out.String(), "compacted") {
		t.Errorf("missing summary line: %q", out.String())
	}

	// In-place compaction must be refused before the input is clobbered.
	if err := run([]string{"compact", "-in", fragPath, "-out", fragPath}, &bytes.Buffer{}); err == nil {
		t.Fatal("in-place compact accepted")
	}
	if _, err := store.Open(fragPath); err != nil {
		t.Fatalf("input store damaged by rejected in-place compact: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"explode"},
		{"build", "-in", "missing.csv"},
		{"build", "-out", "x.mstore"},
		{"info"},
		{"info", filepath.Join(os.TempDir(), "does-not-exist.mstore")},
		{"cat"},
		{"cat", "-bbox", "1,2,3", "x"},
		{"cat", "-from", "yesterday-ish", "x"},
		{"compact", "-in", "only"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestBuildFromGzip(t *testing.T) {
	csvPath, d := writeSampleCSV(t)
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	gzPath := csvPath + ".gz"
	f, err := os.Create(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	storePath := filepath.Join(t.TempDir(), "gz.mstore")
	if err := run([]string{"build", "-in", gzPath, "-out", storePath}, &bytes.Buffer{}); err != nil {
		t.Fatalf("build from gz: %v", err)
	}
	s, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Manifest().Points != d.TotalPoints() {
		t.Errorf("store holds %d points, want %d", s.Manifest().Points, d.TotalPoints())
	}
}

// TestDiffReportsDivergence pins the diff subcommand: paired users get
// point counts and displacement, one-sided users are listed, output is
// sorted by user.
func TestDiffReportsDivergence(t *testing.T) {
	base := time.Date(2025, 5, 1, 9, 0, 0, 0, time.UTC)
	mk := func(path string, traces []*trace.Trace) string {
		t.Helper()
		w, err := store.Create(path, store.Options{Shards: 2, BlockPoints: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range traces {
			for _, p := range tr.Points {
				if err := w.Append(tr.User, p); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// ann: anonymized ~111 m east (0.001 lng at lat 45 is ~79 m; use
	// lat shift for a clean number). bob: identical. carl only in orig,
	// dora only in anon.
	origPath := mk(filepath.Join(t.TempDir(), "o.mstore"), []*trace.Trace{
		trace.MustNew("ann", []trace.Point{
			trace.P(45.1, 5.7, base), trace.P(45.1, 5.8, base.Add(time.Minute)),
		}),
		trace.MustNew("bob", []trace.Point{trace.P(-12.5, 130.8, base)}),
		trace.MustNew("carl", []trace.Point{trace.P(1, 1, base)}),
	})
	anonPath := mk(filepath.Join(t.TempDir(), "a.mstore"), []*trace.Trace{
		trace.MustNew("ann", []trace.Point{
			trace.P(45.101, 5.7, base), trace.P(45.101, 5.75, base.Add(30*time.Second)),
			trace.P(45.101, 5.8, base.Add(time.Minute)),
		}),
		trace.MustNew("bob", []trace.Point{trace.P(-12.5, 130.8, base)}),
		trace.MustNew("dora", []trace.Point{trace.P(2, 2, base)}),
	})

	var out bytes.Buffer
	if err := run([]string{"diff", origPath, anonPath}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	// header, ann, bob, totals, only-orig carl, only-anon dora
	if len(lines) != 6 {
		t.Fatalf("diff output has %d lines, want 6:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[1], "ann") || !strings.HasPrefix(lines[2], "bob") {
		t.Errorf("rows not sorted by user:\n%s", got)
	}
	annFields := strings.Fields(lines[1])
	if annFields[1] != "2" || annFields[2] != "3" {
		t.Errorf("ann point counts = %v, want 2 -> 3", annFields)
	}
	// 0.001 deg of latitude is ~111 m; every anonymized ann point sits
	// that far from the original path.
	for _, f := range annFields[3:5] {
		if !strings.HasPrefix(f, "111.") {
			t.Errorf("ann displacement %q, want ~111 m", f)
		}
	}
	bobFields := strings.Fields(lines[2])
	if bobFields[3] != "0.0" || bobFields[4] != "0.0" {
		t.Errorf("identical bob has displacement: %v", bobFields)
	}
	if !strings.Contains(lines[3], "paired 2 users (3 -> 4 points)") {
		t.Errorf("totals line = %q", lines[3])
	}
	if !strings.Contains(lines[4], "carl") || !strings.Contains(lines[4], origPath) {
		t.Errorf("missing only-orig carl: %q", lines[4])
	}
	if !strings.Contains(lines[5], "dora") || !strings.Contains(lines[5], anonPath) {
		t.Errorf("missing only-anon dora: %q", lines[5])
	}

	if err := run([]string{"diff", origPath}, &out); err == nil {
		t.Error("diff with one path accepted")
	}
}

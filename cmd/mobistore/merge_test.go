package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobipriv/internal/rng"
	"mobipriv/internal/store"
	"mobipriv/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildNodeStores writes three fragmented per-node stores the way a
// mobiserve fleet's sinks would: each user lands on the node the
// placement contract (rng.Shard) picks, and appends interleave across
// users with tiny blocks so every store is fragmented.
func buildNodeStores(t *testing.T, dir string) []string {
	t.Helper()
	const nodes = 3
	base := time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC)
	writers := make([]*store.Writer, nodes)
	paths := make([]string, nodes)
	for i := range writers {
		paths[i] = filepath.Join(dir, fmt.Sprintf("node%d.mstore", i))
		w, err := store.Create(paths[i], store.Options{Shards: 2, BlockPoints: 2})
		if err != nil {
			t.Fatal(err)
		}
		writers[i] = w
	}
	users := []string{"ann", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}
	for i := 0; i < 6; i++ {
		for ui, u := range users {
			p := trace.P(40+float64(ui), 5+float64(i)/1e3, base.Add(time.Duration(i)*time.Minute))
			if err := writers[rng.Shard(u, nodes)].Append(u, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// TestMergeGolden pins the fleet-join path end to end: merging three
// fragmented per-node stores produces a store whose summary line and
// full `mobistore info` rendering (shard/gen layout, per-segment block
// and point counts) match the checked-in golden byte for byte. Run
// with -update to rewrite the golden after an intended format change.
func TestMergeGolden(t *testing.T) {
	dir := t.TempDir()
	paths := buildNodeStores(t, dir)
	out := filepath.Join(dir, "merged.mstore")

	var buf bytes.Buffer
	// One scan worker: the output store's segment layout is
	// byte-deterministic, which is what lets info output be golden.
	args := append([]string{"merge", "-out", out, "-workers", "1"}, paths...)
	if err := run(args, &buf); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := run([]string{"info", out}, &buf); err != nil {
		t.Fatalf("info: %v", err)
	}
	got := strings.ReplaceAll(buf.String(), dir, "<TMP>")

	golden := filepath.Join("testdata", "merge_info.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("merge output differs from golden (-update to rewrite):\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The merged store must load the union of the per-node data.
	s, err := store.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 8 || d.TotalPoints() != 48 {
		t.Errorf("merged store holds %d users / %d points, want 8 / 48", d.Len(), d.TotalPoints())
	}
}

// TestMergeRefusesSelfMerge pins the SamePath guard: merging a store
// into itself would unlink the input's segments before reading them,
// so it must be refused before any damage, whichever argument position
// the collision is in.
func TestMergeRefusesSelfMerge(t *testing.T) {
	dir := t.TempDir()
	paths := buildNodeStores(t, dir)
	for _, in := range []string{paths[0], paths[2]} {
		err := run([]string{"merge", "-out", in, paths[0], paths[1], paths[2]}, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), "into itself") {
			t.Fatalf("self-merge into %s accepted (err=%v)", in, err)
		}
	}
	// No input was damaged by the refusals.
	for _, p := range paths {
		s, err := store.Open(p)
		if err != nil {
			t.Fatalf("input %s damaged by rejected self-merge: %v", p, err)
		}
		s.Close()
	}
}

// TestMergeRejectsOverlappingUsers pins the disjointness contract: two
// stores sharing a user are not a partition of one dataset, and the
// merge must fail naming the duplicate instead of interleaving two
// users' points.
func TestMergeRejectsOverlappingUsers(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC)
	mk := func(name string) string {
		path := filepath.Join(dir, name)
		w, err := store.Create(path, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append("shared-user", trace.P(1, 2, base)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a, b := mk("a.mstore"), mk("b.mstore")
	err := run([]string{"merge", "-out", filepath.Join(dir, "out.mstore"), "-workers", "1", a, b}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "shared-user") {
		t.Fatalf("overlapping merge err = %v, want duplicate-user error naming shared-user", err)
	}
}

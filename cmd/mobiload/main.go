// Command mobiload is the deterministic load driver for mobiserve: it
// replays seeded synthetic traffic (or an existing .mstore dataset)
// against a running instance at a target rate and persists the serving
// performance — points/s, p50/p95/p99 ingest latency, error counts —
// as a BENCH_serve.json artifact, so the perf trajectory is tracked
// across PRs instead of re-measured by hand.
//
//	mobiserve -addr :8080 -mechanism "geoi(0.01)" &
//	mobiload -target http://localhost:8080 -users 200 -days 1 -out BENCH_serve.json
//
// The traffic is deterministic for a fixed -seed and shape: the result
// records a traffic checksum, so two runs of the same command send
// byte-identical point streams and are directly comparable. Users are
// partitioned across sender workers by the same hash the server shards
// by, preserving each user's chronological order at any -workers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mobipriv/internal/cliutil"
	"mobipriv/internal/load"
	"mobipriv/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobiload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobiload", flag.ContinueOnError)
	var (
		target    = fs.String("target", "http://localhost:8080", "base URL of the mobiserve instance")
		storePath = fs.String("store", "", "replay this .mstore dataset instead of synthesizing traffic")
		users     = fs.Int("users", 50, "synthetic users")
		days      = fs.Int("days", 1, "synthetic days per user")
		sampling  = fs.Duration("sampling", 60*time.Second, "synthetic sampling interval")
		seed      = fs.Int64("seed", 1, "traffic seed (fixed seed = byte-identical traffic)")
		rate      = fs.Float64("rate", 0, "target send rate in points/s (0 = as fast as accepted)")
		batch     = fs.Int("batch", 256, "points per ingest request")
		workers   = fs.Int("workers", 0, "concurrent senders (0 = NumCPU, capped at 8)")
		maxPoints = fs.Int("max-points", 0, "truncate traffic to this many points (0 = all)")
		noFlush   = fs.Bool("no-flush", false, "skip the POST /flush after the traffic")
		out       = fs.String("out", "", "persist the result as a benchmark artifact (e.g. BENCH_serve.json)")
		verbose   = cliutil.Verbose(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := load.Config{
		Target:    strings.TrimRight(*target, "/"),
		Store:     *storePath,
		Users:     *users,
		Days:      *days,
		Sampling:  *sampling,
		Seed:      *seed,
		Rate:      *rate,
		Batch:     *batch,
		Workers:   *workers,
		MaxPoints: *maxPoints,
		Flush:     !*noFlush,
	}
	res, err := load.Run(ctx, cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "sent %d points in %.2fs: %.0f points/s, ingest p50 %.2fms p95 %.2fms p99 %.2fms, %d errors (checksum %s)\n",
		res.Points, res.Seconds, res.PointsPerS,
		res.IngestP50ms, res.IngestP95ms, res.IngestP99ms,
		res.Errors, res.TrafficChecksum)
	if sd := res.Server; sd != nil {
		fmt.Fprintf(stdout, "server: %d points in, %d push stalls; p99 decomposition: queue-wait %.2fms (%.0f%%) process %.2fms (%.0f%%) sink %.2fms (%.0f%%)\n",
			sd.PointsIn, sd.PushStalls,
			sd.QueueWait.P99ms, 100*sd.QueueWait.ShareP99,
			sd.Process.P99ms, 100*sd.Process.ShareP99,
			sd.Sink.P99ms, 100*sd.Sink.ShareP99)
	}

	if *out != "" {
		if err := load.WriteBench(*out, "mobiload "+strings.Join(args, " "), res); err != nil {
			return fmt.Errorf("write %s: %w", *out, err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}

	if *verbose {
		if err := dumpLatency(ctx, cfg, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "mobiload: fetch /stats: %v\n", err)
		}
		if err := dumpMetrics(ctx, cfg, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "mobiload: fetch /metrics: %v\n", err)
		}
	}
	return nil
}

// dumpLatency prints the server's per-histogram quantile summaries
// from /stats — every latency series (HTTP routes, engine queue-wait /
// process / sink) as one line of p50/p95/p99.
func dumpLatency(ctx context.Context, cfg load.Config, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.Target+"/stats", nil)
	if err != nil {
		return err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var st struct {
		Latency []obs.HistogramSnapshot `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	for _, h := range st.Latency {
		name := h.Name
		if h.Labels != "" {
			name += "{" + h.Labels + "}"
		}
		fmt.Fprintf(w, "%s: n=%d p50 %.2fms p95 %.2fms p99 %.2fms\n",
			name, h.Count, h.P50*1e3, h.P95*1e3, h.P99*1e3)
	}
	return nil
}

// dumpMetrics fetches the server's /metrics after the run — the
// server-side view of the load just applied.
func dumpMetrics(ctx context.Context, cfg load.Config, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.Target+"/metrics", nil)
	if err != nil {
		return err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

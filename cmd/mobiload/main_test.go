package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mobipriv/internal/load"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// stub mimics mobiserve's ingest/flush wire contract.
func stub(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		n := int64(0)
		if err := traceio.DecodeJSONL(r.Body, func(string, trace.Point) error { n++; return nil }); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(map[string]int64{"accepted": n})
	})
	mux.HandleFunc("POST /flush", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]bool{"flushed": true})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestRunWritesBench pins the CLI contract: a run against a server
// produces the summary line and persists a parseable BENCH artifact,
// and the traffic checksum is identical across runs of the same seed.
func TestRunWritesBench(t *testing.T) {
	srv := stub(t)
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")

	runOnce := func() string {
		var sb strings.Builder
		err := run([]string{
			"-target", srv.URL,
			"-users", "6",
			"-seed", "9",
			"-max-points", "400",
			"-workers", "2",
			"-out", out,
		}, &sb)
		if err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	out1 := runOnce()
	if !strings.Contains(out1, "points/s") || !strings.Contains(out1, "wrote "+out) {
		t.Fatalf("unexpected output: %q", out1)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var b load.Bench
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("BENCH artifact is not valid JSON: %v", err)
	}
	if b.Results == nil || b.Results.Points != 400 || b.Results.PointsPerS <= 0 {
		t.Fatalf("bad bench results: %+v", b.Results)
	}
	if b.Results.Errors != 0 {
		t.Fatalf("errors in bench: %+v", b.Results)
	}

	// Determinism: the checksum printed by a second identical run
	// matches the first.
	sumRe := regexp.MustCompile(`checksum ([0-9a-f]+)`)
	m1 := sumRe.FindStringSubmatch(out1)
	m2 := sumRe.FindStringSubmatch(runOnce())
	if m1 == nil || m2 == nil || m1[1] != m2[1] {
		t.Fatalf("checksums differ or missing: %v vs %v", m1, m2)
	}
	if m1[1] != b.Results.TrafficChecksum {
		t.Fatalf("printed checksum %s != persisted %s", m1[1], b.Results.TrafficChecksum)
	}
}

// TestRunBadTarget pins the error path: an unreachable target fails
// with a nonzero error, not a hang.
func TestRunBadTarget(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-target", "http://127.0.0.1:1", "-users", "2", "-max-points", "10", "-no-flush"}, &sb)
	// Every ingest fails; the run itself still completes with errors
	// counted rather than aborting on the first refused connection.
	// (A failed final /flush IS a hard error, hence -no-flush here.)
	if err != nil {
		t.Fatalf("run returned hard error for refused connections: %v", err)
	}
	if !strings.Contains(sb.String(), "errors") {
		t.Fatalf("output missing error count: %q", sb.String())
	}
}

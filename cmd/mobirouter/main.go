// Command mobirouter fronts a fleet of mobiserve workers with the
// single-node ingest API: clients POST to one address, and the router
// pins each user to one worker via the shared placement contract
// (splitmix64(fnv64a(user)) mod nodes — the same hash the stream
// engine shards by), batches records per destination node, retries
// transient upstream failures with backoff, and aggregates the fleet's
// /stats into the single-node wire shape. See internal/router for the
// placement and aggregation contracts.
//
//	mobirouter -addr :8079 -nodes localhost:8081,localhost:8082,localhost:8083
//
// Endpoints (mirroring mobiserve):
//
//	POST /ingest   NDJSON or CSV, forwarded per-user to the owning
//	               node; responds with the accepted point count. An
//	               incoming traceparent is forwarded upstream and
//	               echoed on the response.
//	POST /flush    forwarded to every node; succeeds only if all do.
//	GET  /stats    fleet-aggregated stats: scalar counters summed,
//	               latency histograms merged exactly (sparse-bin
//	               snapshots), plus a per-node breakdown.
//	GET  /metrics  the router's own Prometheus series, per node:
//	               router_forwarded_points, router_upstream_errors,
//	               router_upstream_seconds.
//	GET  /healthz  probes every node; 503 naming dead nodes.
//
// A three-node recipe is in docs/CLI.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mobipriv/internal/router"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobirouter:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobirouter", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8079", "listen address")
		nodes   = fs.String("nodes", "", "comma-separated upstream mobiserve workers (host:port,...); order defines placement")
		batch   = fs.Int("batch", 256, "points buffered per node before an upstream POST")
		retries = fs.Int("retries", 2, "retries per failed upstream request")
		backoff = fs.Duration("retry-backoff", 50*time.Millisecond, "initial retry backoff (doubles per attempt)")
		timeout = fs.Duration("timeout", 30*time.Second, "per-upstream-request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes == "" {
		return errors.New("-nodes is required (comma-separated host:port list)")
	}
	rt, err := router.New(router.Config{
		Nodes:        strings.Split(*nodes, ","),
		Batch:        *batch,
		Retries:      *retries,
		RetryBackoff: *backoff,
		Timeout:      *timeout,
	})
	if err != nil {
		return err
	}

	// Probe the fleet once at startup so a dead node is loud in the log
	// immediately, not on the first unlucky ingest. The router still
	// starts — the node may just not be up yet.
	if err := rt.Check(context.Background()); err != nil {
		log.Printf("mobirouter: fleet not healthy yet: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	}()
	log.Printf("mobirouter: %d nodes (%s) on %s endpoints: POST /ingest, POST /flush, GET /stats, GET /metrics, GET /healthz",
		len(rt.Nodes()), strings.Join(rt.Nodes(), " "), *addr)
	err = hs.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}

package mobipriv

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

// TestParallelSmoothingDeterministic is the determinism contract of the
// parallel runtime: smoothing a multi-trace dataset with any worker
// count produces output identical to the serial path.
func TestParallelSmoothingDeterministic(t *testing.T) {
	d := commuterData(t, 16).Dataset
	mech := MustFromSpec("promesse")
	serial, err := NewRunner(WithWorkers(1)).Run(context.Background(), mech, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.NumCPU(), 32} {
		parallel, err := NewRunner(WithWorkers(workers)).Run(context.Background(), mech, d)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !datasetsEqual(serial.Dataset, parallel.Dataset) {
			t.Errorf("workers=%d: output differs from serial run", workers)
		}
		sd, pd := serial.DroppedUsers(), parallel.DroppedUsers()
		if len(sd) != len(pd) {
			t.Errorf("workers=%d: dropped %d users, serial dropped %d", workers, len(pd), len(sd))
		}
	}
}

// TestParallelGeoIDeterministic: per-trace RNG derivation makes the
// geo-indistinguishability baseline independent of the worker count.
func TestParallelGeoIDeterministic(t *testing.T) {
	d := commuterData(t, 12).Dataset
	mech := MustFromSpec("geoi(0.01)")
	serial, err := NewRunner(WithWorkers(1)).Run(context.Background(), mech, d)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(WithWorkers(8)).Run(context.Background(), mech, d)
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(serial.Dataset, parallel.Dataset) {
		t.Error("geoi output depends on worker count")
	}
}

// TestParallelPipelineDeterministic runs the full pipeline under the
// Runner and checks it matches the plain Anonymizer path.
func TestParallelPipelineDeterministic(t *testing.T) {
	d := commuterData(t, 12).Dataset
	a, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Anonymize(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewRunner(WithWorkers(runtime.NumCPU())).Run(context.Background(), a.Mechanism(), d)
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(want.Dataset, got.Dataset) {
		t.Error("pipeline output depends on worker count")
	}
	if want.Zones() != got.Zones() || want.Swaps() != got.Swaps() {
		t.Error("pipeline reports depend on worker count")
	}
}

func TestRunnerCancellation(t *testing.T) {
	d := commuterData(t, 8).Dataset
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, spec := range []string{"promesse", "pipeline", "geoi(0.01)", "w4m(k=2,delta=500)", "raw"} {
		_, err := NewRunner(WithWorkers(4)).Run(ctx, MustFromSpec(spec), d)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", spec, err)
		}
	}
}

func TestRunnerNilMechanism(t *testing.T) {
	if _, err := NewRunner().Run(context.Background(), nil, nil); err == nil {
		t.Fatal("nil mechanism accepted")
	}
}

func TestPipelineStageReports(t *testing.T) {
	d := commuterData(t, 10).Dataset
	mech := Pipeline(DefaultMixZoneSwap(), DefaultSpeedSmooth(), DefaultPseudonymize())
	res, err := mech.Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{"mixzones", "smooth", "pseudonymize"}
	if len(res.Reports) != len(wantStages) {
		t.Fatalf("got %d reports, want %d", len(res.Reports), len(wantStages))
	}
	for i, want := range wantStages {
		if res.Reports[i].Stage != want {
			t.Errorf("report %d stage = %q, want %q", i, res.Reports[i].Stage, want)
		}
	}
	if _, ok := res.Report("smooth"); !ok {
		t.Error("Report(smooth) not found")
	}
	if _, ok := res.Report("quantum"); ok {
		t.Error("Report(quantum) found")
	}
	// The aggregate accessors equal the per-stage sums.
	var zones, swaps, supp int
	for _, rep := range res.Reports {
		zones += rep.Zones
		swaps += rep.Swaps
		supp += rep.Suppressed
	}
	if res.Zones() != zones || res.Swaps() != swaps || res.SuppressedPoints() != supp {
		t.Error("aggregates disagree with per-stage reports")
	}
}

// TestPipelineSubsetStages: stages compose freely; a smoothing-only
// pipeline keeps identities and reports identity ground truth.
func TestPipelineSubsetStages(t *testing.T) {
	d := commuterData(t, 6).Dataset
	res, err := Pipeline(DefaultSpeedSmooth()).Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range res.Dataset.Users() {
		if d.ByUser(u) == nil {
			t.Errorf("identity %q changed by smoothing-only pipeline", u)
		}
		if owner := res.MajorityOwner(u); owner != u {
			t.Errorf("MajorityOwner(%q) = %q without a swap stage", u, owner)
		}
	}
	if owner := res.MajorityOwner("ghost"); owner != "" {
		t.Errorf("MajorityOwner(ghost) = %q", owner)
	}
}

func TestPipelineInvalidStageConfig(t *testing.T) {
	d := commuterData(t, 4).Dataset
	cases := []Stage{
		MixZoneSwap{Radius: 0, Window: 1},
		MixZoneSwap{Radius: 100, Window: 0},
		MixZoneSwap{Radius: 100, Window: 1, Cooldown: -1},
		SpeedSmooth{Epsilon: 0},
	}
	for i, st := range cases {
		if _, err := Pipeline(st).Apply(context.Background(), d); err == nil {
			t.Errorf("case %d: invalid stage accepted", i)
		}
	}
}

// TestResultPseudonymRoundTrip checks the forward and reverse pseudonym
// maps stay consistent (the reverse map replaced a linear scan).
func TestResultPseudonymRoundTrip(t *testing.T) {
	g := commuterData(t, 10)
	a, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Anonymize(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	for pre := range res.pseudonym {
		pub, ok := res.PseudonymOf(pre)
		if !ok {
			t.Fatalf("PseudonymOf(%q) missing", pre)
		}
		back, ok := res.prePseudonym(pub)
		if !ok || back != pre {
			t.Fatalf("prePseudonym(%q) = %q, %v; want %q", pub, back, ok, pre)
		}
	}
}

package mobipriv

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mobipriv/internal/core"
	"mobipriv/internal/mixzone"
	"mobipriv/internal/rng"
	"mobipriv/internal/trace"
)

// Stage is one composable step of an anonymization pipeline. A stage
// transforms the dataset flowing through it and appends a StageReport
// (plus any ground-truth metadata) to the shared Result.
//
// Stages must be immutable values, safe for concurrent use.
type Stage interface {
	// StageName labels the stage's report.
	StageName() string
	// Run transforms the dataset. It must not modify its input.
	Run(ctx context.Context, d *Dataset, res *Result) (*Dataset, error)
}

// Pipeline composes stages into a Mechanism named "pipeline": the
// dataset flows through the stages in order while the Result
// accumulates their reports. The paper's full mechanism is
//
//	Pipeline(DefaultMixZoneSwap(), DefaultSpeedSmooth(), DefaultPseudonymize())
//
// but any subset, ordering, or custom Stage composes the same way.
func Pipeline(stages ...Stage) Mechanism {
	return pipelineMechanism{name: "pipeline", stages: stages}
}

type pipelineMechanism struct {
	name   string
	stages []Stage
}

func (p pipelineMechanism) Name() string { return p.name }

func (p pipelineMechanism) Apply(ctx context.Context, d *Dataset) (*Result, error) {
	if d == nil {
		return nil, errors.New("mobipriv: nil dataset")
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("mobipriv: %w", err)
	}
	res := &Result{}
	working := d
	for _, st := range p.stages {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next, err := st.Run(ctx, working, res)
		if err != nil {
			return nil, fmt.Errorf("mobipriv: %s: %w", st.StageName(), err)
		}
		working = next
	}
	res.Dataset = working
	return res, nil
}

// MixZoneSwap is the trajectory-swapping stage: wherever users actually
// meet (on the original timing), the few observations inside the
// meeting area are suppressed and the user identifiers of the crossing
// traces are shuffled, breaking trace linkability. It records the
// swap ground truth on the Result (OriginalAt, MajorityOwner).
type MixZoneSwap struct {
	// Radius is the mix-zone radius in meters. Must be positive.
	Radius float64
	// Window is the co-location window for meeting detection. Must be
	// positive.
	Window time.Duration
	// Cooldown limits repeated zones for the same user pair. Must be
	// non-negative.
	Cooldown time.Duration
	// Seed drives the swap permutations.
	Seed int64
	// DisableSwap keeps zone suppression but never swaps identities
	// (ablation).
	DisableSwap bool
	// DisableSuppress keeps swapping but publishes in-zone points
	// (ablation).
	DisableSuppress bool
}

// DefaultMixZoneSwap returns the stage at the paper's operating point:
// 100 m zones, 1-minute window, 15-minute cooldown.
func DefaultMixZoneSwap() MixZoneSwap {
	return MixZoneSwap{Radius: 100, Window: time.Minute, Cooldown: 15 * time.Minute, Seed: 1}
}

// StageName implements Stage.
func (s MixZoneSwap) StageName() string { return "mixzones" }

// Run implements Stage.
func (s MixZoneSwap) Run(ctx context.Context, d *Dataset, res *Result) (*Dataset, error) {
	if s.Radius <= 0 {
		return nil, errors.New("Radius must be positive")
	}
	if s.Window <= 0 {
		return nil, errors.New("Window must be positive")
	}
	if s.Cooldown < 0 {
		return nil, errors.New("Cooldown must be non-negative")
	}
	mz, err := mixzone.Apply(d, mixzone.Config{
		Radius:         s.Radius,
		Window:         s.Window,
		Cooldown:       s.Cooldown,
		SwapSeed:       s.Seed,
		NoSwap:         s.DisableSwap,
		NoSuppress:     s.DisableSuppress,
		SuppressWindow: 0,
	})
	if err != nil {
		return nil, err
	}
	res.AddReport(StageReport{
		Stage:      s.StageName(),
		Zones:      len(mz.Zones),
		Swaps:      mz.SwapCount(),
		Suppressed: mz.Suppressed,
		Dropped:    mz.DroppedUsers,
	})
	res.setSegments(mz.Segments)
	return mz.Dataset, nil
}

// SpeedSmooth is the speed-smoothing (time-distortion) stage: every
// trace is re-published with uniform spacing between points and uniform
// timestamps, so the user appears to move at constant speed and her
// stops (points of interest) are no longer visible. Traces too short to
// survive end-trimming are dropped and reported.
//
// Smoothing is independent per trace; under a Runner with
// WithWorkers(n) the traces are fanned across n workers with output
// identical to the serial run.
type SpeedSmooth struct {
	// Epsilon is the published inter-point spacing in meters. Must be
	// positive.
	Epsilon float64
	// Trim is the path distance removed from both trace ends, hiding
	// the first and last stops. Negative means "equal to Epsilon";
	// zero disables trimming.
	Trim float64
}

// DefaultSpeedSmooth returns the stage at the paper's operating point:
// 100 m spacing, trim = Epsilon.
func DefaultSpeedSmooth() SpeedSmooth { return SpeedSmooth{Epsilon: 100, Trim: -1} }

// StageName implements Stage.
func (s SpeedSmooth) StageName() string { return "smooth" }

// Run implements Stage.
func (s SpeedSmooth) Run(ctx context.Context, d *Dataset, res *Result) (*Dataset, error) {
	smoothed, rep, err := core.SmoothDatasetCtx(ctx, d, core.Config{Epsilon: s.Epsilon, Trim: s.Trim})
	if err != nil {
		return nil, err
	}
	res.AddReport(StageReport{Stage: s.StageName(), Dropped: rep.Dropped})
	return smoothed, nil
}

// Pseudonymize replaces user identifiers with opaque pseudonyms
// (Prefix000, Prefix001, ...) and records the forward and reverse
// pseudonym maps on the Result. An empty Prefix keeps the — possibly
// swapped — original labels (useful for debugging) while still
// recording the identity mapping.
type Pseudonymize struct {
	// Prefix names output identities Prefix000, Prefix001, ...
	Prefix string
	// Seed scrambles the assignment order so pseudonyms are
	// deterministic but label-decorrelated.
	Seed int64
}

// DefaultPseudonymize returns the stage used across the experiments:
// prefix "p", seed 1.
func DefaultPseudonymize() Pseudonymize { return Pseudonymize{Prefix: "p", Seed: 1} }

// StageName implements Stage.
func (s Pseudonymize) StageName() string { return "pseudonymize" }

// Run implements Stage.
func (s Pseudonymize) Run(ctx context.Context, d *Dataset, res *Result) (*Dataset, error) {
	forward := make(map[string]string, d.Len())
	if s.Prefix == "" {
		for _, u := range d.Users() {
			forward[u] = u
		}
		res.setPseudonyms(forward)
		res.AddReport(StageReport{Stage: s.StageName()})
		return d, nil
	}
	// Deterministic but label-decorrelated assignment: sort users, then
	// assign pseudonyms in an order scrambled by the seed.
	users := d.Users()
	perm := seededPerm(len(users), s.Seed)
	for i, u := range users {
		forward[u] = fmt.Sprintf("%s%03d", s.Prefix, perm[i])
	}
	renamed := make([]*Trace, 0, d.Len())
	for _, tr := range d.Traces() {
		cp := tr.Clone()
		cp.User = forward[tr.User]
		renamed = append(renamed, cp)
	}
	out, err := trace.NewDataset(renamed)
	if err != nil {
		return nil, err
	}
	res.setPseudonyms(forward)
	res.AddReport(StageReport{Stage: s.StageName()})
	return out, nil
}

// seededPerm returns a deterministic permutation of [0, n) derived from
// the seed without importing math/rand here: a simple multiplicative
// shuffle keyed by splitmix64.
func seededPerm(n int, seed int64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	s := uint64(seed) ^ rng.Gamma
	next := func() uint64 {
		s += rng.Gamma
		return rng.Mix(s)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// PerTraceStage is the optional capability a Stage grows when its Run
// transforms every trace independently: PerTrace returns the function
// equivalent of Run on a single trace, or nil when THIS configuration
// of the stage is not trace-independent (e.g. Pseudonymize with a
// non-empty prefix numbers users globally). A pipeline whose stages all
// return non-nil composes them into a mechanism-level PerTrace, making
// the spec eligible for store-native runs (Runner.RunStore).
type PerTraceStage interface {
	Stage
	PerTrace() PerTraceFunc
}

// PerTrace implements PerTraceStage: smoothing is independent per
// trace, with the same drops the batch stage reports.
func (s SpeedSmooth) PerTrace() PerTraceFunc {
	return perTracePromesse(s.Epsilon, s.Trim)
}

// PerTrace implements PerTraceStage. Only the empty-prefix form is
// trace-independent: assigning Prefix000, Prefix001, ... requires the
// full sorted user list.
func (s Pseudonymize) PerTrace() PerTraceFunc {
	if s.Prefix != "" {
		return nil
	}
	return func(ctx context.Context, tr *Trace) (*Trace, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return tr, nil
	}
}

// PerTrace composes the stages' per-trace forms, or returns nil when
// any stage lacks one in its current configuration (MixZoneSwap never
// has one — meeting detection is inherently cross-trace).
func (p pipelineMechanism) PerTrace() PerTraceFunc {
	fns := make([]PerTraceFunc, 0, len(p.stages))
	for _, st := range p.stages {
		pt, ok := st.(PerTraceStage)
		if !ok {
			return nil
		}
		fn := pt.PerTrace()
		if fn == nil {
			return nil
		}
		fns = append(fns, fn)
	}
	return func(ctx context.Context, tr *Trace) (*Trace, error) {
		for _, fn := range fns {
			var err error
			if tr, err = fn(ctx, tr); err != nil || tr == nil {
				return nil, err
			}
		}
		return tr, nil
	}
}

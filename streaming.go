package mobipriv

import (
	"mobipriv/internal/stream"
)

// StreamMechanism is the online counterpart of Mechanism, holding the
// streaming state of ONE user: Push feeds one observation (in time
// order) and returns the points that became safe to publish; Flush ends
// the trace and drains whatever was withheld. It mirrors the internal
// engine's contract, so values built here drive the sharded streaming
// engine directly.
type StreamMechanism interface {
	Push(p Point) []Point
	Flush() []Point
}

// StreamFactory builds the per-user streaming state; a serving system
// calls it once per user when the user's first update arrives. It must
// be safe for concurrent use.
type StreamFactory func(user string) StreamMechanism

// Streamer is the optional capability a Mechanism grows when it can run
// online: Streaming returns the factory producing its per-user
// streaming adapters. Resolve it with AsStreaming, which sees through
// the wrappers FromSpec applies.
type Streamer interface {
	Mechanism
	Streaming() StreamFactory
}

// AsStreaming reports whether the mechanism can run online and returns
// its per-user factory. It unwraps the name-normalization layers added
// by FromSpec, so specs like "geoi(0.01)" or "promesse(epsilon=200)"
// resolve to their streaming adapters.
func AsStreaming(m Mechanism) (StreamFactory, bool) {
	for m != nil {
		if s, ok := m.(Streamer); ok {
			return s.Streaming(), true
		}
		u, ok := m.(interface{ Unwrap() Mechanism })
		if !ok {
			return nil, false
		}
		m = u.Unwrap()
	}
	return nil, false
}

// StreamingMechanisms returns the sorted names of registered mechanisms
// whose default spec resolves to a streaming-capable mechanism.
func StreamingMechanisms() []string {
	var out []string
	for _, name := range Mechanisms() {
		m, err := FromSpec(name)
		if err != nil {
			continue
		}
		if _, ok := AsStreaming(m); ok {
			out = append(out, name)
		}
	}
	return out
}

// WithStreaming attaches a streaming capability to a mechanism; used by
// the built-in registrations and available to custom ones.
func WithStreaming(m Mechanism, f StreamFactory) Mechanism {
	return streamable{Mechanism: m, factory: f}
}

type streamable struct {
	Mechanism
	factory StreamFactory
}

func (s streamable) Streaming() StreamFactory { return s.factory }

// Unwrap lets the other capability probes (AsPerTrace) see through
// this layer.
func (s streamable) Unwrap() Mechanism { return s.Mechanism }

// The built-in streaming factories bridge to the internal adapters. The
// internal stream.Mechanism interface is structurally identical to
// StreamMechanism (Point aliases trace.Point), so the values cross the
// boundary without wrapping.

func streamRaw() StreamFactory {
	c := stream.Passthrough{}
	return func(user string) StreamMechanism { return c.New(user) }
}

func streamPromesse(epsilon, window float64) StreamFactory {
	c := stream.Promesse{Epsilon: epsilon, Window: window}
	return func(user string) StreamMechanism { return c.New(user) }
}

func streamGeoI(epsilon float64, seed int64) StreamFactory {
	// Factory (not New) so a user who is flushed or evicted and comes
	// back gets a fresh noise stream instead of replaying the first one.
	f := stream.GeoI{Epsilon: epsilon, Seed: seed}.Factory()
	return func(user string) StreamMechanism { return f(user) }
}

// StreamPseudonymize returns the online pseudonymizer factory: points
// pass through unchanged while the stream is published under a
// deterministic per-(seed, user) pseudonym. Compose it with another
// streaming mechanism in the serving layer (cmd/mobiserve -pseudonym).
func StreamPseudonymize(prefix string, seed int64) StreamFactory {
	c := stream.Pseudonymize{Prefix: prefix, Seed: seed}
	return func(user string) StreamMechanism { return c.New(user) }
}

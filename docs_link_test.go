package mobipriv_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsLinks is the docs-job link checker: every relative markdown
// link in README.md and docs/ must resolve to an existing file, and
// every anchor (same-file or cross-file) to a real heading. External
// http(s) links are only checked for well-formedness, so the test
// needs no network and cannot flake.
func TestDocsLinks(t *testing.T) {
	files := []string{"README.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatalf("docs/ directory: %v", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	if len(files) < 4 {
		t.Fatalf("expected README.md + at least 3 docs, found %v", files)
	}

	anchors := make(map[string]map[string]bool) // file -> heading slugs
	contents := make(map[string]string)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		contents[f] = string(data)
		anchors[f] = headingSlugs(string(data))
	}

	linkRE := regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	for _, f := range files {
		for _, m := range linkRE.FindAllStringSubmatch(stripCodeBlocks(contents[f]), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			}
			path, anchor, _ := strings.Cut(target, "#")
			resolved := f
			if path != "" {
				resolved = filepath.Join(filepath.Dir(f), path)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", f, target, err)
					continue
				}
			}
			if anchor != "" {
				slugs, ok := anchors[resolved]
				if !ok {
					// Anchor into a file outside the checked set (e.g. a
					// source file): existence of the file is enough.
					continue
				}
				if !slugs[anchor] {
					t.Errorf("%s: link %q: no heading with anchor %q in %s", f, target, anchor, resolved)
				}
			}
		}
	}
}

// headingSlugs collects the GitHub-style anchor slugs of a markdown
// document's headings (lowercase, punctuation stripped, spaces to
// hyphens, -N suffixes for duplicates).
func headingSlugs(doc string) map[string]bool {
	slugs := make(map[string]bool)
	seen := make(map[string]int)
	for _, line := range strings.Split(stripCodeBlocks(doc), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimSpace(strings.TrimLeft(line, "#"))
		text = regexp.MustCompile("`([^`]*)`").ReplaceAllString(text, "$1")
		var b strings.Builder
		for _, r := range strings.ToLower(text) {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
				b.WriteRune(r)
			case r == ' ':
				b.WriteByte('-')
			}
		}
		slug := b.String()
		if n := seen[slug]; n > 0 {
			slugs[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			slugs[slug] = true
		}
		seen[slug]++
	}
	return slugs
}

// stripCodeBlocks blanks fenced code blocks so link-shaped text inside
// them is not treated as a link and fence contents don't produce
// headings.
func stripCodeBlocks(doc string) string {
	var out []string
	in := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			in = !in
			out = append(out, "")
			continue
		}
		if in {
			out = append(out, "")
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

package mobipriv

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	otrace "mobipriv/internal/obs/trace"
	"mobipriv/internal/par"
	"mobipriv/internal/store"
	"mobipriv/internal/trace"
)

// ErrNotPerTrace reports a mechanism that cannot run store-natively
// because it needs the whole dataset at once (pipeline, w4m). Callers
// should fall back to Load + Run.
var ErrNotPerTrace = errors.New("mobipriv: mechanism cannot run per-trace")

// StoreRunStats reports what a store-native run did — the observable
// proof that the dataset never existed in memory.
type StoreRunStats struct {
	// Traces and Points count the input traces assembled from the
	// store and fed to the mechanism.
	Traces int64
	Points int64
	// OutTraces and OutPoints count what was written to the output
	// store.
	OutTraces int64
	OutPoints int64
	// Dropped lists the users the mechanism withheld, sorted — the
	// union of the per-trace drops that a batch Run would report in its
	// StageReports.
	Dropped []string
	// BlocksTotal and BlocksPruned are the input scan's block counters
	// (pruning applies when the run is restricted by ScanOptions-style
	// filters; a full run prunes nothing).
	BlocksTotal  int64
	BlocksPruned int64
	// PeakBufferedUsers is the high-water mark of multi-block users
	// being assembled from input fragments at once — at most one per
	// segment-scanning goroutine (see store.ScanTraces), and 0 when
	// the input store is compacted.
	PeakBufferedUsers int64
	// PeakInFlight is the high-water mark of assembled traces alive in
	// the worker pipeline at once — bounded by 3×workers (one being
	// processed plus one queued per worker, plus one held by each
	// segment-scanning goroutine while it waits for a queue slot),
	// never by the dataset.
	PeakInFlight int64
}

// RunStore applies the mechanism to every trace of an input store and
// streams the results into an output store without ever materializing
// the dataset: input segments are scanned trace-by-trace (fragments
// merged with bounded buffering), the per-trace mechanism work is
// fanned across this Runner's worker pool, and each anonymized trace is
// written to out the moment it is ready. Peak memory is
// O(workers × largest trace), independent of the store size — the
// larger-than-RAM batch path.
//
// The mechanism must expose the per-trace capability (AsPerTrace);
// otherwise RunStore fails with ErrNotPerTrace and the caller should
// fall back to in.Load + Run. Determinism matches the in-memory path:
// per-trace RNGs derive from (seed, user), so the output store — while
// its block order depends on worker scheduling — Load()s identical to
// the batch Runner's result for the same spec and seed, whatever the
// worker count.
//
// RunStore neither closes in nor out: the caller finalizes the output
// store with out.Close.
func (r *Runner) RunStore(ctx context.Context, in *store.Store, out *store.Writer, m Mechanism) (*StoreRunStats, error) {
	return r.RunStoreWith(ctx, in, out, m, store.ScanOptions{})
}

// RunStoreWith is RunStore restricted to the slice of the input store
// selected by filter: the bbox, time-window and user filters apply to
// the input scan with full footer pruning, so "anonymize last week,
// this city" never reads the rest of the store (the skipped blocks
// land in StoreRunStats.BlocksPruned). The filter's Workers, NoCache
// and Stats fields are owned by the run and ignored.
func (r *Runner) RunStoreWith(ctx context.Context, in *store.Store, out *store.Writer, m Mechanism, filter store.ScanOptions) (*StoreRunStats, error) {
	if m == nil {
		return nil, errors.New("mobipriv: nil mechanism")
	}
	if in == nil || out == nil {
		return nil, errors.New("mobipriv: RunStore needs an input store and an output writer")
	}
	fn, ok := AsPerTrace(m)
	if !ok {
		return nil, fmt.Errorf("%w: %s (per-trace mechanisms: %v)", ErrNotPerTrace, m.Name(), PerTraceMechanisms())
	}
	workers := r.workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	stats := &StoreRunStats{}
	var (
		scanStats store.ScanStats
		inFlight  int64
		mu        sync.Mutex
		firstErr  error
		dropped   []string
	)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	// A bounded channel is the whole memory story: the scan blocks once
	// every worker has a trace in hand and one waiting, so the input
	// side can never race ahead of the mechanism.
	ch := make(chan *trace.Trace, workers)
	// Trace IDs key off the user name, so for a fixed tracer seed the
	// same users are sampled on every replay regardless of worker count
	// or scheduling.
	tcr := r.tracer.Load()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tr := range ch {
				var sp *otrace.Span
				if tcr != nil {
					sp = tcr.Root("run.trace", tcr.DeriveID(otrace.Key(tr.User)), 0)
					if sp != nil {
						sp.SetAttr(otrace.A("user", tr.User), otrace.Int("points", int64(tr.Len())))
					}
				}
				res, err := fn(cctx, tr)
				switch {
				case err != nil:
					fail(fmt.Errorf("mobipriv: %s: user %q: %w", m.Name(), tr.User, err))
				case res == nil:
					mu.Lock()
					dropped = append(dropped, tr.User)
					mu.Unlock()
				default:
					if err := out.Add(res); err != nil {
						fail(err)
					} else {
						atomic.AddInt64(&stats.OutTraces, 1)
						atomic.AddInt64(&stats.OutPoints, int64(res.Len()))
					}
				}
				if sp != nil {
					sp.SetAttr(otrace.Int("out_points", int64(outLen(res))))
					sp.End()
				}
				atomic.AddInt64(&inFlight, -1)
			}
		}()
	}

	scan := store.ScanOptions{
		BBox:    filter.BBox,
		From:    filter.From,
		To:      filter.To,
		Users:   filter.Users,
		Workers: workers,
		NoCache: true,
		Stats:   &scanStats,
	}
	scanErr := in.ScanTraces(cctx, scan,
		func(tr *trace.Trace) error {
			atomic.AddInt64(&stats.Traces, 1)
			atomic.AddInt64(&stats.Points, int64(tr.Len()))
			par.PeakAdd(&inFlight, &stats.PeakInFlight)
			select {
			case ch <- tr:
				return nil
			case <-cctx.Done():
				atomic.AddInt64(&inFlight, -1)
				return cctx.Err()
			}
		})
	close(ch)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Strings(dropped)
	stats.Dropped = dropped
	stats.BlocksTotal = scanStats.BlocksTotal
	stats.BlocksPruned = scanStats.BlocksPruned
	stats.PeakBufferedUsers = scanStats.PeakBufferedUsers
	r.nTraces.Add(stats.Traces)
	r.nPoints.Add(stats.Points)
	for {
		old := r.inFlightHigh.Load()
		if stats.PeakInFlight <= old || r.inFlightHigh.CompareAndSwap(old, stats.PeakInFlight) {
			break
		}
	}
	return stats, nil
}

// outLen is res.Len() tolerant of a dropped (nil) trace.
func outLen(res *trace.Trace) int {
	if res == nil {
		return 0
	}
	return res.Len()
}
